//! Sparse main memory.

use crate::{Addr, Word};
use std::cell::Cell;

/// Words per page. Large pages keep the directory small even for the
/// backing-store arena high in the address space (`0x4000_0000`): the
/// directory tops out at 64 Ki entries (512 KiB) for the full 32-bit
/// space and ~16 Ki entries for a simulator that spills.
const PAGE_WORDS: usize = 1 << PAGE_SHIFT;
const PAGE_SHIFT: u32 = 16;

/// Directory-cache sentinel: no page touched yet. Page numbers occupy
/// at most `32 - PAGE_SHIFT` bits, so `u32::MAX` can never collide.
const NO_PAGE: u32 = u32::MAX;

type Page = [Word; PAGE_WORDS];

/// Allocates a zeroed page on the heap without staging it on the stack.
fn new_page() -> Box<Page> {
    vec![0 as Word; PAGE_WORDS]
        .into_boxed_slice()
        .try_into()
        .expect("length matches PAGE_WORDS")
}

#[inline]
fn split(addr: Addr) -> (usize, usize) {
    (
        (addr >> PAGE_SHIFT) as usize,
        (addr as usize) & (PAGE_WORDS - 1),
    )
}

/// A sparse, word-addressed main memory.
///
/// Pages are allocated lazily on first write; unwritten words read as
/// zero, like freshly mapped pages. This is the *functional* home of all
/// data — the [`crate::Cache`] in front of it models timing only.
///
/// Storage is a flat two-level page table: a dense directory (`Vec`
/// indexed by `addr >> PAGE_SHIFT`, grown on demand by writes) of
/// optional boxed pages. Every access is a bounds check plus two
/// dependent loads — no hashing anywhere on the simulator's
/// per-instruction path. A single-entry last-page cache, shared by
/// [`read`](Self::read) / [`write`](Self::write) / [`peek`](Self::peek),
/// remembers the most recently touched resident page so the common
/// same-page access skips the directory probe. The cache only ever
/// names a resident page and the directory never shrinks, so the cached
/// index stays valid for the life of the memory.
pub struct MainMemory {
    dir: Vec<Option<Box<Page>>>,
    /// Most recently touched *resident* page, or [`NO_PAGE`].
    last_page: Cell<u32>,
    resident: usize,
    reads: u64,
    writes: u64,
}

impl Default for MainMemory {
    fn default() -> Self {
        MainMemory {
            dir: Vec::new(),
            last_page: Cell::new(NO_PAGE),
            resident: 0,
            reads: 0,
            writes: 0,
        }
    }
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn lookup(&self, addr: Addr) -> Word {
        let (page, off) = split(addr);
        if page as u32 == self.last_page.get() {
            // Cache invariant: a cached page is resident, so the
            // directory slot exists and is `Some`.
            return match self.dir[page].as_deref() {
                Some(p) => p[off],
                None => unreachable!("last-page cache names a resident page"),
            };
        }
        match self.dir.get(page).and_then(|slot| slot.as_deref()) {
            Some(p) => {
                self.last_page.set(page as u32);
                p[off]
            }
            None => 0,
        }
    }

    /// Reads the word at `addr` (zero if never written).
    pub fn read(&mut self, addr: Addr) -> Word {
        self.reads += 1;
        self.lookup(addr)
    }

    /// Reads without touching access statistics (for debugging/inspection).
    pub fn peek(&self, addr: Addr) -> Word {
        self.lookup(addr)
    }

    /// Writes `value` at `addr`, allocating the page if needed.
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.writes += 1;
        let (page, off) = split(addr);
        if page as u32 == self.last_page.get() {
            match self.dir[page].as_deref_mut() {
                Some(p) => p[off] = value,
                None => unreachable!("last-page cache names a resident page"),
            }
            return;
        }
        self.page_mut(page)[off] = value;
    }

    /// The page's storage, growing the directory and allocating the page
    /// as needed (writes only — reads of unmapped words must not map them).
    fn page_mut(&mut self, page: usize) -> &mut Page {
        if page >= self.dir.len() {
            self.dir.resize_with(page + 1, || None);
        }
        let slot = &mut self.dir[page];
        if slot.is_none() {
            *slot = Some(new_page());
            self.resident += 1;
        }
        self.last_page.set(page as u32);
        slot.as_deref_mut().expect("just filled")
    }

    /// Writes a slice of words starting at `addr`, one directory probe
    /// and one `copy_from_slice` per page spanned.
    pub fn write_block(&mut self, addr: Addr, values: &[Word]) {
        self.writes += values.len() as u64;
        let mut addr = addr;
        let mut values = values;
        while !values.is_empty() {
            let (page, off) = split(addr);
            let n = (PAGE_WORDS - off).min(values.len());
            self.page_mut(page)[off..off + n].copy_from_slice(&values[..n]);
            addr = addr.wrapping_add(n as Addr);
            values = &values[n..];
        }
    }

    /// Reads `out.len()` words starting at `addr` into `out` without
    /// allocating, one directory probe and one `copy_from_slice` per
    /// page spanned. Unwritten ranges fill with zero.
    pub fn read_into(&mut self, addr: Addr, out: &mut [Word]) {
        self.reads += out.len() as u64;
        let mut addr = addr;
        let mut out = &mut out[..];
        while !out.is_empty() {
            let (page, off) = split(addr);
            let n = (PAGE_WORDS - off).min(out.len());
            let (head, rest) = out.split_at_mut(n);
            match self.dir.get(page).and_then(|slot| slot.as_deref()) {
                Some(p) => head.copy_from_slice(&p[off..off + n]),
                None => head.fill(0),
            }
            addr = addr.wrapping_add(n as Addr);
            out = rest;
        }
    }

    /// Reads `len` words starting at `addr`.
    pub fn read_block(&mut self, addr: Addr, len: usize) -> Vec<Word> {
        let mut out = vec![0; len];
        self.read_into(addr, &mut out);
        out
    }

    /// Total word reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total word writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.resident
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mut m = MainMemory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u32::MAX), 0);
        assert_eq!(m.resident_pages(), 0, "reads must not map pages");
    }

    #[test]
    fn write_then_read() {
        let mut m = MainMemory::new();
        m.write(1234, 0xDEAD_BEEF);
        assert_eq!(m.read(1234), 0xDEAD_BEEF);
        assert_eq!(m.peek(1234), 0xDEAD_BEEF);
        assert_eq!(m.read(1235), 0);
    }

    #[test]
    fn blocks_roundtrip_across_page_boundary() {
        let mut m = MainMemory::new();
        let base = (PAGE_WORDS - 2) as Addr; // straddles pages 0 and 1
        m.write_block(base, &[1, 2, 3, 4]);
        assert_eq!(m.read_block(base, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn read_into_matches_read_block() {
        let mut m = MainMemory::new();
        let base = (PAGE_WORDS - 3) as Addr;
        m.write_block(base, &[7, 8, 9, 10, 11]);
        let mut buf = [0; 8];
        m.read_into(base.wrapping_sub(1), &mut buf);
        assert_eq!(buf, [0, 7, 8, 9, 10, 11, 0, 0]);
    }

    #[test]
    fn stats_count() {
        let mut m = MainMemory::new();
        m.write(0, 1);
        m.read(0);
        m.read(1);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.reads(), 2);
    }

    #[test]
    fn high_address_write_after_low() {
        let mut m = MainMemory::new();
        m.write(3, 30);
        m.write(0x4000_0000, 40); // backing arena: grows the directory
        m.write(5, 50); // page 0 again (last-page cache miss path)
        assert_eq!(m.peek(3), 30);
        assert_eq!(m.peek(0x4000_0000), 40);
        assert_eq!(m.peek(5), 50);
        assert_eq!(m.resident_pages(), 2);
    }
}
