//! Sparse main memory.

use crate::{Addr, Word};
use std::collections::HashMap;

const PAGE_WORDS: usize = 1024;
const PAGE_SHIFT: u32 = 10;

/// A sparse, word-addressed main memory.
///
/// Pages are allocated lazily on first touch; unwritten words read as zero,
/// like freshly mapped pages. This is the *functional* home of all data —
/// the [`crate::Cache`] in front of it models timing only.
#[derive(Default)]
pub struct MainMemory {
    pages: HashMap<u32, Box<[Word; PAGE_WORDS]>>,
    reads: u64,
    writes: u64,
}

impl MainMemory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the word at `addr` (zero if never written).
    pub fn read(&mut self, addr: Addr) -> Word {
        self.reads += 1;
        let page = addr >> PAGE_SHIFT;
        let off = (addr as usize) & (PAGE_WORDS - 1);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Reads without touching access statistics (for debugging/inspection).
    pub fn peek(&self, addr: Addr) -> Word {
        let page = addr >> PAGE_SHIFT;
        let off = (addr as usize) & (PAGE_WORDS - 1);
        self.pages.get(&page).map_or(0, |p| p[off])
    }

    /// Writes `value` at `addr`, allocating the page if needed.
    pub fn write(&mut self, addr: Addr, value: Word) {
        self.writes += 1;
        let page = addr >> PAGE_SHIFT;
        let off = (addr as usize) & (PAGE_WORDS - 1);
        self.pages
            .entry(page)
            .or_insert_with(|| Box::new([0; PAGE_WORDS]))[off] = value;
    }

    /// Writes a slice of words starting at `addr`.
    pub fn write_block(&mut self, addr: Addr, values: &[Word]) {
        for (i, &v) in values.iter().enumerate() {
            self.write(addr + i as Addr, v);
        }
    }

    /// Reads `len` words starting at `addr`.
    pub fn read_block(&mut self, addr: Addr, len: usize) -> Vec<Word> {
        (0..len).map(|i| self.read(addr + i as Addr)).collect()
    }

    /// Total word reads performed.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total word writes performed.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Number of resident (touched) pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let mut m = MainMemory::new();
        assert_eq!(m.read(0), 0);
        assert_eq!(m.read(u32::MAX), 0);
    }

    #[test]
    fn write_then_read() {
        let mut m = MainMemory::new();
        m.write(1234, 0xDEAD_BEEF);
        assert_eq!(m.read(1234), 0xDEAD_BEEF);
        assert_eq!(m.peek(1234), 0xDEAD_BEEF);
        assert_eq!(m.read(1235), 0);
    }

    #[test]
    fn blocks_roundtrip_across_page_boundary() {
        let mut m = MainMemory::new();
        let base = (PAGE_WORDS - 2) as Addr; // straddles pages 0 and 1
        m.write_block(base, &[1, 2, 3, 4]);
        assert_eq!(m.read_block(base, 4), vec![1, 2, 3, 4]);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn stats_count() {
        let mut m = MainMemory::new();
        m.write(0, 1);
        m.read(0);
        m.read(1);
        assert_eq!(m.writes(), 1);
        assert_eq!(m.reads(), 2);
    }
}
