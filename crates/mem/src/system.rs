//! The composed memory system: data cache over main memory, plus the
//! Ctable used by register-file spill engines.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::ctable::Ctable;
use crate::memory::MainMemory;
use crate::{Addr, Word};

/// Configuration of a [`MemSystem`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemConfig {
    /// Data-cache geometry and latencies.
    pub dcache: CacheConfig,
    /// Number of Context IDs the Ctable can map.
    pub ctable_slots: usize,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            dcache: CacheConfig::default(),
            ctable_slots: 4096,
        }
    }
}

/// Data cache + main memory + Ctable.
///
/// All latencies are returned to the caller (the processor model), which
/// charges them to the running thread; `MemSystem` itself keeps no clock.
pub struct MemSystem {
    memory: MainMemory,
    dcache: Cache,
    ctable: Ctable,
}

impl MemSystem {
    /// Creates a memory system from `cfg`.
    pub fn new(cfg: MemConfig) -> Self {
        MemSystem {
            memory: MainMemory::new(),
            dcache: Cache::new(cfg.dcache),
            ctable: Ctable::new(cfg.ctable_slots),
        }
    }

    /// Loads the word at `addr` through the data cache.
    ///
    /// Returns `(value, cycles)`.
    pub fn load(&mut self, addr: Addr) -> (Word, u32) {
        let cycles = self.dcache.access(addr, false);
        (self.memory.read(addr), cycles)
    }

    /// Stores `value` at `addr` through the data cache. Returns the cycle
    /// cost.
    pub fn store(&mut self, addr: Addr, value: Word) -> u32 {
        let cycles = self.dcache.access(addr, true);
        self.memory.write(addr, value);
        cycles
    }

    /// Atomic fetch-and-add on `addr` (uniprocessor, so trivially atomic).
    ///
    /// Returns `(old_value, cycles)`.
    pub fn fetch_add(&mut self, addr: Addr, delta: i32) -> (Word, u32) {
        let cycles = self.dcache.access(addr, true);
        let old = self.memory.read(addr);
        self.memory.write(addr, old.wrapping_add(delta as Word));
        (old, cycles)
    }

    /// Reads a word without touching the cache model or statistics — used
    /// by the simulator's own bookkeeping and by tests.
    pub fn peek(&self, addr: Addr) -> Word {
        self.memory.peek(addr)
    }

    /// Writes a word bypassing the cache model (program loading, test
    /// setup). Functionally identical to `store` but free of charge.
    pub fn poke(&mut self, addr: Addr, value: Word) {
        self.memory.write(addr, value);
    }

    /// Writes a block bypassing the cache model.
    pub fn poke_block(&mut self, addr: Addr, values: &[Word]) {
        self.memory.write_block(addr, values);
    }

    /// Reads a block into `out` bypassing the cache model — the read
    /// dual of [`poke_block`](Self::poke_block), allocation-free and
    /// page-chunked (result readback, bulk diagnostics).
    pub fn read_into(&mut self, addr: Addr, out: &mut [Word]) {
        self.memory.read_into(addr, out);
    }

    /// The Ctable (shared with register-file spill engines).
    pub fn ctable(&self) -> &Ctable {
        &self.ctable
    }

    /// Mutable access to the Ctable.
    pub fn ctable_mut(&mut self) -> &mut Ctable {
        &mut self.ctable
    }

    /// Data-cache statistics.
    pub fn dcache_stats(&self) -> CacheStats {
        self.dcache.stats()
    }

    /// Resets data-cache statistics.
    pub fn reset_stats(&mut self) {
        self.dcache.reset_stats();
    }
}

impl Default for MemSystem {
    fn default() -> Self {
        Self::new(MemConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_store_roundtrip_with_latency() {
        let mut m = MemSystem::default();
        let c1 = m.store(100, 42);
        assert!(c1 > 1, "first store misses");
        let (v, c2) = m.load(100);
        assert_eq!(v, 42);
        assert_eq!(c2, 1, "second access hits");
    }

    #[test]
    fn fetch_add_returns_old() {
        let mut m = MemSystem::default();
        m.poke(7, 10);
        let (old, _) = m.fetch_add(7, -3);
        assert_eq!(old, 10);
        assert_eq!(m.peek(7), 7);
    }

    #[test]
    fn poke_bypasses_cache_stats() {
        let mut m = MemSystem::default();
        m.poke_block(0, &[1, 2, 3]);
        assert_eq!(m.dcache_stats().accesses, 0);
        assert_eq!(m.peek(2), 3);
    }

    #[test]
    fn ctable_reachable() {
        let mut m = MemSystem::default();
        m.ctable_mut().map(1, 0x800);
        assert_eq!(m.ctable().lookup(1), Ok(0x800));
    }
}
