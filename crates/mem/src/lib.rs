//! # nsf-mem — the memory hierarchy substrate
//!
//! The paper's processor (Figure 4) sees three storage levels:
//!
//! 1. the register file under study (in `nsf-core`),
//! 2. a **data cache** in front of
//! 3. **main memory**, both addressed by virtual addresses,
//!
//! plus the **Ctable**, a short indexed table translating a Context ID to
//! the virtual base address of that context's backing store, "allowing the
//! NSF to spill registers directly into the data cache".
//!
//! This crate provides all three below-register levels:
//!
//! * [`MainMemory`] — a sparse, word-addressed 32-bit memory (functional
//!   storage; all values live here);
//! * [`Cache`] — a set-associative, write-back, write-allocate *timing*
//!   model layered over main memory (tags and replacement state only; data
//!   stays in [`MainMemory`], which is exact for a uniprocessor);
//! * [`Ctable`] — the CID → virtual-address translation table;
//! * [`MemSystem`] — the composition, returning access latencies in cycles
//!   that the simulator charges to the running thread.

pub mod cache;
pub mod ctable;
pub mod memory;
pub mod system;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use ctable::{Ctable, CtableError};
pub use memory::MainMemory;
pub use system::{MemConfig, MemSystem};

/// Machine word: the paper's register files store 32-bit registers.
pub type Word = u32;

/// Word-granularity virtual address.
pub type Addr = u32;
