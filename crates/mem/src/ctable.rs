//! The Ctable: Context ID → virtual-address translation.
//!
//! Paper §4.3: "The block labelled Ctable is a short table indexed by
//! Context ID that returns the virtual address of a context. This allows
//! the NSF to spill registers directly into the data cache. A user program
//! or thread scheduler may use any strategy for mapping register contexts
//! to structures in memory, simply by writing the translation into the
//! Ctable."

use crate::Addr;
use std::fmt;

/// Error produced when the Ctable has no mapping for a Context ID.
///
/// Spilling a register of an unmapped context is a runtime-software bug
/// (the scheduler must install a mapping before the context runs), so the
/// simulator surfaces it as a typed error rather than a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CtableError {
    /// The unmapped Context ID.
    pub cid: u16,
}

impl fmt::Display for CtableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ctable has no backing-store mapping for context {}",
            self.cid
        )
    }
}

impl std::error::Error for CtableError {}

/// The translation table. Indexed by CID; each entry is the virtual base
/// address of the context's register save area.
#[derive(Clone, Debug)]
pub struct Ctable {
    entries: Vec<Option<Addr>>,
}

impl Ctable {
    /// Creates a table with room for `capacity` Context IDs.
    pub fn new(capacity: usize) -> Self {
        Ctable {
            entries: vec![None; capacity],
        }
    }

    /// Number of CID slots.
    pub fn capacity(&self) -> usize {
        self.entries.len()
    }

    /// Installs (or replaces) the mapping for `cid`.
    ///
    /// # Panics
    ///
    /// Panics if `cid` is beyond the table's capacity — CIDs are allocated
    /// by the runtime from a range sized to this table, so an out-of-range
    /// CID is a construction bug.
    pub fn map(&mut self, cid: u16, base: Addr) {
        self.entries[cid as usize] = Some(base);
    }

    /// Removes the mapping for `cid` (e.g. when a context is destroyed).
    pub fn unmap(&mut self, cid: u16) {
        self.entries[cid as usize] = None;
    }

    /// Translates `cid` to its backing-store base address.
    pub fn lookup(&self, cid: u16) -> Result<Addr, CtableError> {
        self.entries
            .get(cid as usize)
            .copied()
            .flatten()
            .ok_or(CtableError { cid })
    }

    /// The backing address of register `offset` of context `cid`.
    pub fn reg_addr(&self, cid: u16, offset: u8) -> Result<Addr, CtableError> {
        Ok(self.lookup(cid)? + Addr::from(offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_lookup_unmap() {
        let mut t = Ctable::new(8);
        assert_eq!(t.lookup(3), Err(CtableError { cid: 3 }));
        t.map(3, 0x1000);
        assert_eq!(t.lookup(3), Ok(0x1000));
        assert_eq!(t.reg_addr(3, 7), Ok(0x1007));
        t.unmap(3);
        assert!(t.lookup(3).is_err());
    }

    #[test]
    fn out_of_capacity_lookup_is_error() {
        let t = Ctable::new(2);
        assert_eq!(t.lookup(9), Err(CtableError { cid: 9 }));
    }

    #[test]
    fn error_displays_cid() {
        let e = CtableError { cid: 5 };
        assert!(e.to_string().contains('5'));
    }
}
