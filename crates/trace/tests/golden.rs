//! Golden-trace regression corpus: checked-in scale-0 captures of
//! GateSim (sequential) and Gamteb (parallel) under the paper's NSF
//! reference configurations.
//!
//! Two invariants are pinned, and together they freeze the whole
//! pipeline:
//!
//! 1. **Byte-identical re-capture** — running the workload today and
//!    serializing the recorded stream reproduces the checked-in file
//!    byte for byte. Any drift in workload generation, simulator op
//!    ordering, event capture or the binary encoding shows up here.
//! 2. **Stats-identical replay** — replaying the checked-in file
//!    through its recording engine reproduces the live run's
//!    [`nsf_core::RegFileStats`] exactly.
//!
//! If a deliberate change shifts either (a new event kind, an encoding
//! revision with a version bump, a workload fix), regenerate with:
//!
//! ```sh
//! cargo run --release -p nsf-bench --bin trace_tool -- \
//!     record --workload gatesim --scale 0 --engine nsf:80 \
//!     --out crates/trace/tests/golden/gatesim_s0_nsf80.nsftrace
//! # likewise gamteb with --engine nsf:128
//! ```

use nsf_sim::SimConfig;
use nsf_trace::{capture, parse_engine, replay, Trace};

struct Golden {
    file: &'static str,
    bytes: &'static [u8],
    workload: &'static str,
    engine: &'static str,
}

const CORPUS: &[Golden] = &[
    Golden {
        file: "gatesim_s0_nsf80.nsftrace",
        bytes: include_bytes!("golden/gatesim_s0_nsf80.nsftrace"),
        workload: "GateSim",
        engine: "nsf:80",
    },
    Golden {
        file: "gamteb_s0_nsf128.nsftrace",
        bytes: include_bytes!("golden/gamteb_s0_nsf128.nsftrace"),
        workload: "Gamteb",
        engine: "nsf:128",
    },
];

fn build(name: &str) -> nsf_workloads::Workload {
    nsf_workloads::paper_suite(0)
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("{name} not in paper suite"))
}

#[test]
fn golden_traces_decode_with_expected_meta() {
    for g in CORPUS {
        let t = Trace::from_bytes(g.bytes).unwrap_or_else(|e| panic!("{}: {e}", g.file));
        assert_eq!(t.meta.workload, g.workload, "{}", g.file);
        assert_eq!(t.meta.engine, g.engine, "{}", g.file);
        assert_eq!(t.meta.scale, 0, "{}", g.file);
        assert!(!t.events.is_empty(), "{}", g.file);
        assert!(t.meta.instructions > 0, "{}", g.file);
    }
}

#[test]
fn recapture_is_byte_identical() {
    for g in CORPUS {
        let workload = build(g.workload);
        let cfg = SimConfig::with_regfile(parse_engine(g.engine).unwrap());
        let (trace, _) = capture(&workload, cfg, g.engine, 0)
            .unwrap_or_else(|e| panic!("{}: capture failed: {e}", g.file));
        assert_eq!(
            trace.to_bytes(),
            g.bytes,
            "{}: re-capture drifted from the checked-in golden trace \
             (if intentional, regenerate per the module docs)",
            g.file
        );
    }
}

#[test]
fn golden_replay_matches_live_stats_exactly() {
    for g in CORPUS {
        let workload = build(g.workload);
        let cfg = SimConfig::with_regfile(parse_engine(g.engine).unwrap());
        let live = nsf_workloads::run(&workload, cfg)
            .unwrap_or_else(|e| panic!("{}: live run failed: {e}", g.file));
        let trace = Trace::from_bytes(g.bytes).unwrap();
        let replayed = replay(&trace, &cfg).unwrap_or_else(|e| panic!("{}: {e}", g.file));
        assert_eq!(
            replayed.stats, live.regfile,
            "{}: replayed statistics diverged from the live run",
            g.file
        );
        assert_eq!(trace.meta.instructions, live.instructions, "{}", g.file);
        assert_eq!(trace.meta.cycles, live.cycles, "{}", g.file);
    }
}
