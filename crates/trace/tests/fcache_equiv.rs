//! The frontend-cache equivalence wall, property-tested: random engine
//! specs from every family × seeded generated programs must produce
//! **bit-identical** results through capture-and-replay
//! ([`capture_frontend`]/[`replay_frontend`]) and through the Rust
//! reference path ([`nsf_workloads::run`], one serial machine per
//! configuration) — the full [`RunReport`] (cycles, register-file
//! statistics, occupancy samples) and the end-of-run memory residue
//! (enforced by the workload's own output check over the whole result
//! area, which [`replay_frontend`] runs on every lane). The program
//! generator is the same shape as the lane-batching wall's
//! (`crates/sim/tests/lane_equiv.rs`): counted loops of ALU / store /
//! load / atomic / rfree steps plus a nested subroutine chain.

use nsf_core::SpillEngine;
use nsf_isa::{Inst, ProgramBuilder, Reg};
use nsf_sim::{Machine, RegFileSpec, RunReport, SimConfig};
use nsf_trace::{capture_frontend, replay_frontend};
use nsf_workloads::harness::expect_words;
use nsf_workloads::Workload;
use proptest::prelude::*;

/// Result area the generated programs write their residue into.
const OUT: u32 = 0x0005_0000;

/// Words of residue pinned by the workload check.
const RESIDUE_WORDS: u32 = 24;

#[derive(Clone, Copy, Debug)]
enum Action {
    Alu(AluOp, i32),
    Store(u32),
    LoadAdd(u32),
    Amo(u32, i32),
    Free,
    CallSub,
}

#[derive(Clone, Copy, Debug)]
enum AluOp {
    Add,
    Sub,
    Mul,
    Xor,
    Sll,
    Slt,
}

impl AluOp {
    fn inst(self, rd: Reg, rs1: Reg, rs2: Reg) -> Inst {
        match self {
            AluOp::Add => Inst::Add { rd, rs1, rs2 },
            AluOp::Sub => Inst::Sub { rd, rs1, rs2 },
            AluOp::Mul => Inst::Mul { rd, rs1, rs2 },
            AluOp::Xor => Inst::Xor { rd, rs1, rs2 },
            AluOp::Sll => Inst::Sll { rd, rs1, rs2 },
            AluOp::Slt => Inst::Slt { rd, rs1, rs2 },
        }
    }
}

#[derive(Clone, Debug)]
struct ProgSpec {
    actions: Vec<Action>,
    iters: i32,
    call_depth: u32,
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Xor,
        AluOp::Sll,
        AluOp::Slt,
    ])
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => (arb_alu(), any::<i32>()).prop_map(|(op, c)| Action::Alu(op, c)),
        2 => (1u32..RESIDUE_WORDS).prop_map(Action::Store),
        2 => (1u32..RESIDUE_WORDS).prop_map(Action::LoadAdd),
        1 => ((1u32..RESIDUE_WORDS), -3i32..4).prop_map(|(k, d)| Action::Amo(k, d)),
        1 => Just(Action::Free),
        2 => Just(Action::CallSub),
    ]
}

fn arb_prog() -> impl Strategy<Value = ProgSpec> {
    (
        proptest::collection::vec(arb_action(), 1..10),
        1i32..5,
        0u32..3,
    )
        .prop_map(|(actions, iters, call_depth)| ProgSpec {
            actions,
            iters,
            call_depth,
        })
}

/// Materializes a [`ProgSpec`] as a real program (always batchable:
/// single-threaded, no channels, no remote operations).
fn build_program(spec: &ProgSpec) -> nsf_isa::Program {
    let r = Reg::R;
    let g = Reg::G;
    let mut b = ProgramBuilder::new();
    let subs: Vec<_> = (0..spec.call_depth).map(|_| b.new_label()).collect();
    b.load_const(r(6), OUT as i32);
    b.load_const(r(2), 0);
    b.load_const(r(5), 0);
    b.load_const(r(4), spec.iters);
    let top = b.new_label();
    b.bind(top);
    for &a in &spec.actions {
        match a {
            Action::Alu(op, c) => {
                b.load_const(r(0), c);
                b.emit(op.inst(r(2), r(2), r(0)));
            }
            Action::Store(k) => {
                b.emit(Inst::Sw {
                    base: r(6),
                    src: r(2),
                    imm: k as i32,
                });
            }
            Action::LoadAdd(k) => {
                b.emit(Inst::Lw {
                    rd: r(1),
                    base: r(6),
                    imm: k as i32,
                });
                b.emit(Inst::Add {
                    rd: r(2),
                    rs1: r(2),
                    rs2: r(1),
                });
            }
            Action::Amo(k, d) => {
                b.emit(Inst::AmoAdd {
                    rd: r(7),
                    base: r(6),
                    imm: d,
                });
                b.emit(Inst::Sw {
                    base: r(6),
                    src: r(7),
                    imm: k as i32,
                });
            }
            Action::Free => {
                b.load_const(r(7), 1);
                b.emit(Inst::RFree { reg: r(7) });
            }
            Action::CallSub => {
                if let Some(&first) = subs.first() {
                    b.call(first);
                    b.emit(Inst::Add {
                        rd: r(2),
                        rs1: r(2),
                        rs2: g(1),
                    });
                }
            }
        }
    }
    b.emit(Inst::Addi {
        rd: r(5),
        rs1: r(5),
        imm: 1,
    });
    b.bne(r(5), r(4), top);
    b.emit(Inst::Sw {
        base: r(6),
        src: r(2),
        imm: 0,
    });
    b.emit(Inst::Halt);
    for (i, &label) in subs.iter().enumerate() {
        b.bind(label);
        if let Some(&next) = subs.get(i + 1) {
            b.call(next);
        }
        b.load_const(r(0), 3 + i as i32);
        b.emit(Inst::Add {
            rd: g(1),
            rs1: g(1),
            rs2: r(0),
        });
        b.emit(Inst::Ret);
    }
    b.finish("main").unwrap()
}

/// A random engine spec drawn from all five families (two spill-engine
/// flavours where the organization supports both).
fn arb_spec() -> impl Strategy<Value = RegFileSpec> {
    prop_oneof![
        (16u32..=128).prop_map(RegFileSpec::paper_nsf),
        ((2u32..=8), (12u8..=32)).prop_map(|(f, r)| RegFileSpec::paper_segmented(f, r)),
        ((2u32..=8), (12u8..=32)).prop_map(|(f, r)| RegFileSpec::segmented_valid_only(f, r)),
        (12u8..=32).prop_map(|regs| RegFileSpec::Conventional {
            regs,
            engine: SpillEngine::hardware(),
        }),
        (12u8..=32).prop_map(|regs| RegFileSpec::Conventional {
            regs,
            engine: SpillEngine::software(),
        }),
        (12u8..=32).prop_map(RegFileSpec::sparc_windows),
        Just(RegFileSpec::Oracle),
    ]
}

/// Wraps a generated program as a [`Workload`] whose check pins the
/// whole result-area residue to `expected` — so every capture and every
/// replayed lane is validated against the serial reference's memory,
/// not merely against each other.
fn make_workload(program: nsf_isa::Program, expected: Vec<u32>) -> Workload {
    Workload {
        name: "fcache-prop",
        parallel: false,
        program,
        source_lines: 0,
        mem_init: Vec::new(),
        check: expect_words(OUT, expected),
    }
}

/// Serial reference: one fresh [`Machine`] per configuration.
fn run_serial(program: &nsf_isa::Program, cfgs: &[SimConfig]) -> Vec<(RunReport, Vec<u32>)> {
    cfgs.iter()
        .map(|&cfg| {
            let mut m = Machine::new(program.clone(), cfg).unwrap();
            let report = m.run_and_keep().unwrap();
            let residue = (0..RESIDUE_WORDS).map(|k| m.mem.peek(OUT + k)).collect();
            (report, residue)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random engine specs × random programs: capture the frontend once
    /// under the first configuration, replay it into every configuration
    /// (including the capture's own), and require bit-identical reports
    /// plus the serial run's exact memory residue in every lane.
    #[test]
    fn cached_replay_is_bit_identical_to_live(
        spec in arb_prog(),
        engines in proptest::collection::vec(arb_spec(), 2..6),
    ) {
        let program = build_program(&spec);
        let cfgs: Vec<SimConfig> = engines.into_iter().map(SimConfig::with_regfile).collect();
        let serial = run_serial(&program, &cfgs);
        let w = make_workload(program, serial[0].1.clone());
        // Engines only change timing, never values: every lane's residue
        // equals lane 0's, so one expected image pins them all.
        for (i, (_, residue)) in serial.iter().enumerate() {
            prop_assert_eq!(&serial[0].1, residue, "lane {} residue differs serially", i);
        }

        let buf = capture_frontend(&w, cfgs[0]).unwrap();
        prop_assert_eq!(&buf.report, &serial[0].0, "capture must equal the live run");

        let replayed = replay_frontend(&buf, &w, &cfgs).unwrap();
        prop_assert_eq!(replayed.len(), serial.len());
        for (i, ((want, _), got)) in serial.iter().zip(&replayed).enumerate() {
            prop_assert_eq!(want, got, "replayed lane {} report", i);
        }
    }

    /// One lane from each of the five families side by side, replayed
    /// from a single captured buffer: the mixed set stays exact.
    #[test]
    fn all_five_families_replay_from_one_buffer(
        spec in arb_prog(),
        nsf_total in 16u32..=128,
        frames in 2u32..=6,
        frame_regs in 12u8..=32,
        conv_regs in 12u8..=32,
        win_regs in 12u8..=32,
    ) {
        let program = build_program(&spec);
        let cfgs: Vec<SimConfig> = [
            RegFileSpec::paper_nsf(nsf_total),
            RegFileSpec::paper_segmented(frames, frame_regs),
            RegFileSpec::Conventional { regs: conv_regs, engine: SpillEngine::hardware() },
            RegFileSpec::sparc_windows(win_regs),
            RegFileSpec::Oracle,
        ]
        .into_iter()
        .map(SimConfig::with_regfile)
        .collect();

        let serial = run_serial(&program, &cfgs);
        let w = make_workload(program, serial[0].1.clone());
        let buf = capture_frontend(&w, cfgs[0]).unwrap();
        let replayed = replay_frontend(&buf, &w, &cfgs).unwrap();
        for (i, ((want, _), got)) in serial.iter().zip(&replayed).enumerate() {
            prop_assert_eq!(want, got, "family lane {} report", i);
        }
    }
}
