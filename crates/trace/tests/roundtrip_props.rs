//! Property tests for the capture → serialize → deserialize → replay
//! pipeline: for arbitrary synthetic workloads, a trace re-read from
//! its own bytes and replayed through the organization that recorded it
//! must reproduce the live run's register-file statistics exactly —
//! for every organization family.

use nsf_sim::SimConfig;
use nsf_trace::{capture, parse_engine, replay, Trace};
use nsf_workloads::synth::{parallel, sequential, ParParams, SeqParams};
use proptest::prelude::*;

/// Captures `workload` under `spec`, round-trips the bytes, replays,
/// and asserts statistics match the live run bit for bit.
fn assert_exact_roundtrip(workload: &nsf_workloads::Workload, spec: &str) {
    let cfg = SimConfig::with_regfile(parse_engine(spec).expect("spec parses"));
    let (trace, report) = capture(workload, cfg, spec, 0).expect("live run validates");
    let back = Trace::from_bytes(&trace.to_bytes()).expect("own bytes decode");
    prop_assert_eq!(&back, &trace, "serialization round-trips");
    let replayed = replay(&back, &cfg).expect("replay succeeds");
    prop_assert_eq!(
        replayed.stats,
        report.regfile,
        "replayed stats must equal live stats for {} under {}",
        workload.name,
        spec
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sequential call trees: NSF, segmented, windowed and conventional
    /// files all replay to their own live statistics.
    #[test]
    fn sequential_synth_replays_exactly_on_all_engines(
        depth in 0u32..6,
        fanout in 1u32..3,
        locals in 1u32..10,
    ) {
        let w = sequential(SeqParams { depth, fanout, locals });
        // Windows must span the 20-register sequential context (offset
        // 19 is addressed), mirroring the related-work grid's sizing.
        for spec in ["nsf:80", "segmented:4x20", "windowed:20", "conventional:32"] {
            assert_exact_roundtrip(&w, spec);
        }
    }

    /// Multithreaded workloads: the interleaved stream (including the
    /// segmented dribble-free baseline's op-counted engine) replays
    /// exactly too.
    #[test]
    fn parallel_synth_replays_exactly_on_all_engines(
        threads in 2u32..6,
        iters in 1u32..6,
        active in 4u8..24,
    ) {
        let w = parallel(ParParams { threads, iters, work: 12, active_regs: active });
        for spec in ["nsf:128", "segmented:4x32", "segmented-sw:4x32", "windowed:32", "conventional:32"] {
            assert_exact_roundtrip(&w, spec);
        }
    }

    /// Line-size and valid-bit variants (the Fig. 13 / §7.3 design
    /// points) keep the exact-replay property as well.
    #[test]
    fn design_variants_replay_exactly(
        depth in 1u32..5,
        locals in 2u32..10,
    ) {
        let w = sequential(SeqParams { depth, fanout: 2, locals });
        for spec in ["nsf:80x4", "segmented-valid:4x20"] {
            assert_exact_roundtrip(&w, spec);
        }
    }
}
