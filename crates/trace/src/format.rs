//! The `.nsftrace` on-disk format: a versioned, length-delimited
//! compact binary encoding with a streaming writer and reader.
//!
//! ```text
//! magic    b"NSFT"                        4 bytes
//! version  u8 (= 1)
//! meta     workload  varint len + UTF-8
//!          engine    varint len + UTF-8   (trace_tool engine spec)
//!          scale     varint
//!          instructions / cycles / context_switches   varints
//! events   repeated:  tag u8 | cycle-delta varint | fields varints
//! trailer  tag 0xFF | event-count varint | checksum u64 LE
//! ```
//!
//! All integers are LEB128 varints (cids and offsets are tiny, values
//! and addresses usually short), cycle stamps are delta-encoded against
//! the previous event, and the checksum is FNV-1a-64 over every byte
//! from the magic through the event-count varint — so truncation, bit
//! rot and miscounted streams all surface as typed [`TraceError`]s,
//! never as garbage events. The write path encodes each event into a
//! stack buffer: no allocation per event.

use crate::event::{RegEvent, TimedEvent};
use nsf_core::{RegAddr, RegFileError};
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Leading magic of every `.nsftrace` stream.
pub const MAGIC: [u8; 4] = *b"NSFT";
/// Current format version.
pub const FORMAT_VERSION: u8 = 1;
/// Trailer tag terminating the event stream.
const TRAILER_TAG: u8 = 0xFF;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stream-level description stored in the header.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Benchmark name (Table 1 naming, or a synthetic generator's).
    pub workload: String,
    /// Engine spec string the trace was recorded under (parseable by
    /// [`crate::spec::parse_engine`], e.g. `nsf:80`).
    pub engine: String,
    /// Workload scale the trace was recorded at.
    pub scale: u32,
    /// Instructions the recorded run executed.
    pub instructions: u64,
    /// Cycles the recorded run took.
    pub cycles: u64,
    /// Context switches the recorded run performed.
    pub context_switches: u64,
}

/// Typed failure of trace encoding, decoding or replay. Corrupt input
/// (truncation, bad magic, version skew, checksum mismatch) is always
/// an error, never a panic.
#[derive(Debug)]
pub enum TraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with [`MAGIC`].
    BadMagic([u8; 4]),
    /// The stream's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion(u8),
    /// The stream ended mid-record.
    Truncated,
    /// An event record carries an unknown tag.
    BadTag(u8),
    /// A varint ran past its maximum width.
    BadVarint,
    /// A header string is not valid UTF-8.
    BadString,
    /// The trailer checksum does not match the stream contents.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum computed over the received bytes.
        computed: u64,
    },
    /// The trailer event count does not match the events decoded.
    CountMismatch {
        /// Count stored in the trailer.
        stored: u64,
        /// Events actually decoded.
        read: u64,
    },
    /// Replay failed at event `index` with a register-file error.
    Replay {
        /// Index of the failing event in the stream.
        index: u64,
        /// The engine's error.
        source: RegFileError,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o failed: {e}"),
            TraceError::BadMagic(m) => write!(f, "not an nsftrace stream (magic {m:02x?})"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (expect {FORMAT_VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace stream truncated mid-record"),
            TraceError::BadTag(t) => write!(f, "unknown event tag {t:#04x}"),
            TraceError::BadVarint => write!(f, "malformed varint"),
            TraceError::BadString => write!(f, "header string is not valid UTF-8"),
            TraceError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: trailer says {stored:#018x}, stream hashes to {computed:#018x}"
            ),
            TraceError::CountMismatch { stored, read } => write!(
                f,
                "event count mismatch: trailer says {stored}, stream held {read}"
            ),
            TraceError::Replay { index, source } => {
                write!(f, "replay failed at event {index}: {source}")
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Replay { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            TraceError::Truncated
        } else {
            TraceError::Io(e)
        }
    }
}

/// Appends `v` as a LEB128 varint to `buf`, returning the new length.
fn push_varint(buf: &mut [u8], mut len: usize, mut v: u64) -> usize {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf[len] = byte;
            return len + 1;
        }
        buf[len] = byte | 0x80;
        len += 1;
    }
}

/// In-memory writer over the `.nsftrace` encoding layer: the same
/// LEB128 varint forms [`TraceWriter`] uses, without the file framing
/// (magic, header, checksum trailer) — for streams that never leave the
/// process, like the frontend cache's event buffers ([`crate::fcache`]).
/// Growing a `Vec<u8>` is the only allocation; there is no I/O.
#[derive(Debug, Default)]
pub struct VarWriter {
    buf: Vec<u8>,
}

impl VarWriter {
    /// An empty buffer.
    pub fn new() -> Self {
        VarWriter::default()
    }

    /// An empty buffer with `cap` bytes reserved — capture-sized streams
    /// (megabytes at `--scale 1`) skip the cold vector's doubling copies.
    pub fn with_capacity(cap: usize) -> Self {
        VarWriter {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a raw byte (event tags).
    #[inline]
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends a LEB128 varint — the exact encoding `.nsftrace` fields
    /// use ([`push_varint`] is shared with [`TraceWriter`]).
    #[inline]
    pub fn put_varint(&mut self, v: u64) {
        // Single-byte fast path: most fields (register offsets, context
        // IDs, small values) fit in 7 bits, and capture encodes millions
        // of them per sweep.
        if v < 0x80 {
            self.buf.push(v as u8);
            return;
        }
        let mut tmp = [0u8; 10];
        let len = push_varint(&mut tmp, 0, v);
        self.buf.extend_from_slice(&tmp[..len]);
    }

    /// Appends a signed value zigzag-mapped into a varint (small
    /// magnitudes of either sign stay one byte).
    #[inline]
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Encoded length so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// In-memory reader matching [`VarWriter`]: decodes the `.nsftrace`
/// varint forms from a byte slice. Running past the end or over-long
/// varints surface as [`TraceError`]s, mirroring [`TraceReader`].
#[derive(Debug)]
pub struct VarReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> VarReader<'a> {
    /// A reader at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        VarReader { bytes, pos: 0 }
    }

    /// `true` once every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Byte offset of the next read.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Reads one raw byte.
    #[inline]
    pub fn get_u8(&mut self) -> Result<u8, TraceError> {
        let b = *self.bytes.get(self.pos).ok_or(TraceError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a LEB128 varint.
    #[inline]
    pub fn get_varint(&mut self) -> Result<u64, TraceError> {
        // Single-byte fast path: most fields (register offsets, context
        // IDs, small values) fit in 7 bits, and replay decodes millions
        // of them per sweep.
        if let Some(&b) = self.bytes.get(self.pos) {
            if b < 0x80 {
                self.pos += 1;
                return Ok(u64::from(b));
            }
        }
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                // Tenth byte: only one payload bit still fits a u64, and
                // a continuation bit would run past the maximum 10-byte
                // width — reject rather than silently truncate the high
                // bits (`x << 63` keeps only bit 0).
                return Err(TraceError::BadVarint);
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed varint.
    #[inline]
    pub fn get_varint_signed(&mut self) -> Result<i64, TraceError> {
        let z = self.get_varint()?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Reads a varint that must fit a `u32` (values, addresses).
    #[inline]
    pub fn get_u32(&mut self) -> Result<u32, TraceError> {
        u32::try_from(self.get_varint()?).map_err(|_| TraceError::BadVarint)
    }

    /// Reads a varint that must fit a `u16` (context IDs).
    #[inline]
    pub fn get_u16(&mut self) -> Result<u16, TraceError> {
        u16::try_from(self.get_varint()?).map_err(|_| TraceError::BadVarint)
    }
}

/// Event tags (kept dense so `info` can histogram by tag).
const TAG_READ: u8 = 1;
const TAG_WRITE: u8 = 2;
const TAG_SWITCH: u8 = 3;
const TAG_CALL_PUSH: u8 = 4;
const TAG_THREAD_SWITCH: u8 = 5;
const TAG_FREE_CONTEXT: u8 = 6;
const TAG_FREE_REG: u8 = 7;
const TAG_MEM_READ: u8 = 8;
const TAG_MEM_WRITE: u8 = 9;

/// Streaming `.nsftrace` encoder over any [`Write`] target.
///
/// Events are appended with [`TraceWriter::event`]; [`TraceWriter::finish`]
/// writes the trailer and returns the target. Per-event encoding uses a
/// fixed stack buffer — the write path never allocates.
pub struct TraceWriter<W: Write> {
    out: W,
    hash: u64,
    count: u64,
    last_cycle: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a stream: writes magic, version and `meta` to `out`.
    pub fn new(out: W, meta: &TraceMeta) -> Result<Self, TraceError> {
        let mut w = TraceWriter {
            out,
            hash: FNV_OFFSET,
            count: 0,
            last_cycle: 0,
        };
        w.put(&MAGIC)?;
        w.put(&[FORMAT_VERSION])?;
        w.put_str(&meta.workload)?;
        w.put_str(&meta.engine)?;
        w.put_varint(u64::from(meta.scale))?;
        w.put_varint(meta.instructions)?;
        w.put_varint(meta.cycles)?;
        w.put_varint(meta.context_switches)?;
        Ok(w)
    }

    fn put(&mut self, bytes: &[u8]) -> Result<(), TraceError> {
        for &b in bytes {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.out.write_all(bytes)?;
        Ok(())
    }

    fn put_varint(&mut self, v: u64) -> Result<(), TraceError> {
        let mut buf = [0u8; 10];
        let len = push_varint(&mut buf, 0, v);
        self.put(&buf[..len])
    }

    fn put_str(&mut self, s: &str) -> Result<(), TraceError> {
        self.put_varint(s.len() as u64)?;
        self.put(s.as_bytes())
    }

    /// Appends one event observed at clock `cycle` (stamps must be
    /// nondecreasing — the recorder's clock only moves forward).
    pub fn event(&mut self, cycle: u64, event: &RegEvent) -> Result<(), TraceError> {
        let delta = cycle.saturating_sub(self.last_cycle);
        self.last_cycle = self.last_cycle.max(cycle);
        let mut buf = [0u8; 24];
        let mut len = 0;
        match *event {
            RegEvent::Read { addr } => {
                buf[len] = TAG_READ;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(addr.cid));
                len = push_varint(&mut buf, len, u64::from(addr.offset));
            }
            RegEvent::Write { addr, value } => {
                buf[len] = TAG_WRITE;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(addr.cid));
                len = push_varint(&mut buf, len, u64::from(addr.offset));
                len = push_varint(&mut buf, len, u64::from(value));
            }
            RegEvent::SwitchTo { cid } => {
                buf[len] = TAG_SWITCH;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(cid));
            }
            RegEvent::CallPush { cid } => {
                buf[len] = TAG_CALL_PUSH;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(cid));
            }
            RegEvent::ThreadSwitch { cid } => {
                buf[len] = TAG_THREAD_SWITCH;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(cid));
            }
            RegEvent::FreeContext { cid } => {
                buf[len] = TAG_FREE_CONTEXT;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(cid));
            }
            RegEvent::FreeReg { addr } => {
                buf[len] = TAG_FREE_REG;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(addr.cid));
                len = push_varint(&mut buf, len, u64::from(addr.offset));
            }
            RegEvent::MemRead { addr } => {
                buf[len] = TAG_MEM_READ;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(addr));
            }
            RegEvent::MemWrite { addr } => {
                buf[len] = TAG_MEM_WRITE;
                len = push_varint(&mut buf, len + 1, delta);
                len = push_varint(&mut buf, len, u64::from(addr));
            }
        }
        self.count += 1;
        self.put(&buf[..len])
    }

    /// Writes the trailer (event count + checksum) and returns the
    /// underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.put(&[TRAILER_TAG])?;
        let count = self.count;
        self.put_varint(count)?;
        let checksum = self.hash;
        self.out.write_all(&checksum.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streaming `.nsftrace` decoder over any [`Read`] source.
///
/// Construction parses and validates the header; [`TraceReader::next_event`]
/// yields events until the trailer, whose event count and checksum are
/// verified before the final `None`.
pub struct TraceReader<R: Read> {
    src: R,
    meta: TraceMeta,
    hash: u64,
    count: u64,
    last_cycle: u64,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a stream: reads and validates magic, version and header.
    pub fn new(src: R) -> Result<Self, TraceError> {
        let mut r = TraceReader {
            src,
            meta: TraceMeta::default(),
            hash: FNV_OFFSET,
            count: 0,
            last_cycle: 0,
            done: false,
        };
        let mut magic = [0u8; 4];
        r.get(&mut magic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic(magic));
        }
        let version = r.get_byte()?;
        if version != FORMAT_VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        r.meta = TraceMeta {
            workload: r.get_str()?,
            engine: r.get_str()?,
            scale: u32::try_from(r.get_varint()?).map_err(|_| TraceError::BadVarint)?,
            instructions: r.get_varint()?,
            cycles: r.get_varint()?,
            context_switches: r.get_varint()?,
        };
        Ok(r)
    }

    /// The stream's header.
    pub fn meta(&self) -> &TraceMeta {
        &self.meta
    }

    /// Events decoded so far.
    pub fn events_read(&self) -> u64 {
        self.count
    }

    fn get(&mut self, buf: &mut [u8]) -> Result<(), TraceError> {
        self.src.read_exact(buf)?;
        for &b in buf.iter() {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }

    fn get_byte(&mut self) -> Result<u8, TraceError> {
        let mut b = [0u8; 1];
        self.get(&mut b)?;
        Ok(b[0])
    }

    fn get_varint(&mut self) -> Result<u64, TraceError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let byte = self.get_byte()?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                // See `VarReader::get_varint`: the tenth byte may carry
                // only bit 0 and must terminate, else the value exceeds
                // a u64 and would wrap.
                return Err(TraceError::BadVarint);
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn get_str(&mut self) -> Result<String, TraceError> {
        let len = usize::try_from(self.get_varint()?).map_err(|_| TraceError::BadVarint)?;
        if len > 1 << 20 {
            return Err(TraceError::BadVarint); // absurd header length ⇒ corrupt
        }
        let mut bytes = vec![0u8; len];
        self.get(&mut bytes)?;
        String::from_utf8(bytes).map_err(|_| TraceError::BadString)
    }

    /// Decodes the next event, or `Ok(None)` once the (verified) trailer
    /// is reached.
    pub fn next_event(&mut self) -> Result<Option<TimedEvent>, TraceError> {
        if self.done {
            return Ok(None);
        }
        let tag = self.get_byte()?;
        if tag == TRAILER_TAG {
            let stored_count = self.get_varint()?;
            let computed = self.hash;
            let mut sum = [0u8; 8];
            self.src.read_exact(&mut sum)?; // checksum hashes everything before itself
            let stored = u64::from_le_bytes(sum);
            if stored != computed {
                return Err(TraceError::ChecksumMismatch { stored, computed });
            }
            if stored_count != self.count {
                return Err(TraceError::CountMismatch {
                    stored: stored_count,
                    read: self.count,
                });
            }
            self.done = true;
            return Ok(None);
        }
        let delta = self.get_varint()?;
        self.last_cycle += delta;
        let event = match tag {
            TAG_READ => RegEvent::Read {
                addr: self.get_reg_addr()?,
            },
            TAG_WRITE => RegEvent::Write {
                addr: self.get_reg_addr()?,
                value: self.get_u32()?,
            },
            TAG_SWITCH => RegEvent::SwitchTo {
                cid: self.get_cid()?,
            },
            TAG_CALL_PUSH => RegEvent::CallPush {
                cid: self.get_cid()?,
            },
            TAG_THREAD_SWITCH => RegEvent::ThreadSwitch {
                cid: self.get_cid()?,
            },
            TAG_FREE_CONTEXT => RegEvent::FreeContext {
                cid: self.get_cid()?,
            },
            TAG_FREE_REG => RegEvent::FreeReg {
                addr: self.get_reg_addr()?,
            },
            TAG_MEM_READ => RegEvent::MemRead {
                addr: self.get_u32()?,
            },
            TAG_MEM_WRITE => RegEvent::MemWrite {
                addr: self.get_u32()?,
            },
            other => return Err(TraceError::BadTag(other)),
        };
        self.count += 1;
        Ok(Some(TimedEvent {
            cycle: self.last_cycle,
            event,
        }))
    }

    fn get_cid(&mut self) -> Result<u16, TraceError> {
        u16::try_from(self.get_varint()?).map_err(|_| TraceError::BadVarint)
    }

    fn get_u32(&mut self) -> Result<u32, TraceError> {
        u32::try_from(self.get_varint()?).map_err(|_| TraceError::BadVarint)
    }

    fn get_reg_addr(&mut self) -> Result<RegAddr, TraceError> {
        let cid = self.get_cid()?;
        let offset = u8::try_from(self.get_varint()?).map_err(|_| TraceError::BadVarint)?;
        Ok(RegAddr::new(cid, offset))
    }
}

/// A fully decoded trace: header plus the complete event list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    /// Stream header.
    pub meta: TraceMeta,
    /// The recorded operation stream, in capture order.
    pub events: Vec<TimedEvent>,
}

impl Trace {
    /// Serializes to an in-memory `.nsftrace` image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w =
            TraceWriter::new(Vec::new(), &self.meta).expect("Vec<u8> writes are infallible");
        for e in &self.events {
            w.event(e.cycle, &e.event)
                .expect("Vec<u8> writes are infallible");
        }
        w.finish().expect("Vec<u8> writes are infallible")
    }

    /// Decodes a complete in-memory `.nsftrace` image.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, TraceError> {
        Self::read_from(bytes)
    }

    /// Decodes a complete stream from any reader.
    pub fn read_from<R: Read>(src: R) -> Result<Self, TraceError> {
        let mut r = TraceReader::new(src)?;
        let mut events = Vec::new();
        while let Some(e) = r.next_event()? {
            events.push(e);
        }
        Ok(Trace {
            meta: r.meta().clone(),
            events,
        })
    }

    /// Writes the trace to `path` (buffered).
    pub fn write_file(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let f = BufWriter::new(File::create(path)?);
        let mut w = TraceWriter::new(f, &self.meta)?;
        for e in &self.events {
            w.event(e.cycle, &e.event)?;
        }
        w.finish()?;
        Ok(())
    }

    /// Reads a trace from `path` (buffered).
    pub fn read_file(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        Self::read_from(BufReader::new(File::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> TraceMeta {
        TraceMeta {
            workload: "GateSim".into(),
            engine: "nsf:80".into(),
            scale: 1,
            instructions: 12_345,
            cycles: 23_456,
            context_switches: 78,
        }
    }

    fn sample_events() -> Vec<TimedEvent> {
        use RegEvent::*;
        let ev = |cycle, event| TimedEvent { cycle, event };
        vec![
            ev(0, ThreadSwitch { cid: 0 }),
            ev(
                1,
                Write {
                    addr: RegAddr::new(0, 3),
                    value: 0xDEAD_BEEF,
                },
            ),
            ev(
                1,
                Read {
                    addr: RegAddr::new(0, 3),
                },
            ),
            ev(4, MemWrite { addr: 0x0020_0000 }),
            ev(9, CallPush { cid: 1 }),
            ev(
                9,
                Write {
                    addr: RegAddr::new(1, 0),
                    value: 7,
                },
            ),
            ev(12, MemRead { addr: 0x0010_0004 }),
            ev(
                12,
                FreeReg {
                    addr: RegAddr::new(1, 0),
                },
            ),
            ev(13, SwitchTo { cid: 0 }),
            ev(13, FreeContext { cid: 1 }),
        ]
    }

    #[test]
    fn varint_rejects_overflow_and_overlength() {
        // Maximal valid width: nine continuation bytes then 0x01 places
        // bit 63 — exactly u64::MAX, and it must round-trip.
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        assert_eq!(VarReader::new(&max).get_varint().unwrap(), u64::MAX);
        // A tenth byte carrying payload above bit 0 exceeds a u64: the
        // old decoder shifted those bits into oblivion.
        let mut over = vec![0xFFu8; 9];
        over.push(0x03);
        assert!(matches!(
            VarReader::new(&over).get_varint(),
            Err(TraceError::BadVarint)
        ));
        // A tenth byte with its continuation bit set makes the varint
        // over-long (11+ bytes) no matter what follows.
        let mut eleven = vec![0xFFu8; 10];
        eleven.push(0x00);
        assert!(matches!(
            VarReader::new(&eleven).get_varint(),
            Err(TraceError::BadVarint)
        ));
        let long = vec![0xFFu8; 16];
        assert!(matches!(
            VarReader::new(&long).get_varint(),
            Err(TraceError::BadVarint)
        ));
    }

    #[test]
    fn streaming_reader_rejects_overflowing_header_varint() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.push(0); // empty workload string
        bytes.push(0); // empty engine string
                       // Scale varint whose tenth byte overflows a u64.
        bytes.extend_from_slice(&[0xFF; 9]);
        bytes.push(0x7F);
        let Err(err) = TraceReader::new(&bytes[..]) else {
            panic!("overflowing header varint accepted");
        };
        assert!(matches!(err, TraceError::BadVarint));
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let t = Trace {
            meta: sample_meta(),
            events: sample_events(),
        };
        let bytes = t.to_bytes();
        let back = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn encoding_is_deterministic_and_compact() {
        let t = Trace {
            meta: sample_meta(),
            events: sample_events(),
        };
        assert_eq!(t.to_bytes(), t.to_bytes());
        // 10 events in well under 10 bytes/event plus the small header.
        assert!(t.to_bytes().len() < 64 + 10 * 10, "{}", t.to_bytes().len());
    }

    #[test]
    fn streaming_reader_reports_meta_before_events() {
        let t = Trace {
            meta: sample_meta(),
            events: sample_events(),
        };
        let bytes = t.to_bytes();
        let mut r = TraceReader::new(&bytes[..]).unwrap();
        assert_eq!(r.meta().workload, "GateSim");
        let mut n = 0;
        while r.next_event().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 10);
        assert_eq!(r.events_read(), 10);
        // After the trailer, the reader stays exhausted.
        assert!(r.next_event().unwrap().is_none());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let t = Trace {
            meta: TraceMeta::default(),
            events: vec![],
        };
        assert_eq!(Trace::from_bytes(&t.to_bytes()).unwrap(), t);
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut bytes = Trace {
            meta: sample_meta(),
            events: vec![],
        }
        .to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::BadMagic(_))
        ));
    }

    #[test]
    fn wrong_version_is_typed() {
        let mut bytes = Trace {
            meta: sample_meta(),
            events: vec![],
        }
        .to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            Trace::from_bytes(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn truncation_is_typed_not_panic() {
        let bytes = Trace {
            meta: sample_meta(),
            events: sample_events(),
        }
        .to_bytes();
        // Every proper prefix must fail cleanly (truncated or, for very
        // short prefixes that cut the magic itself, still typed).
        for cut in 0..bytes.len() {
            let err = Trace::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated | TraceError::BadMagic(_) | TraceError::BadVarint
                ),
                "prefix {cut}: unexpected {err}"
            );
        }
    }

    #[test]
    fn checksum_mismatch_is_typed() {
        let t = Trace {
            meta: sample_meta(),
            events: sample_events(),
        };
        let bytes = t.to_bytes();
        // Flip one bit in an event body (not the length-bearing header).
        for flip in [bytes.len() / 2, bytes.len() - 12] {
            let mut corrupt = bytes.clone();
            corrupt[flip] ^= 0x40;
            let err = Trace::from_bytes(&corrupt).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::ChecksumMismatch { .. }
                        | TraceError::BadTag(_)
                        | TraceError::BadVarint
                        | TraceError::Truncated
                        | TraceError::CountMismatch { .. }
                ),
                "flip at {flip}: unexpected {err}"
            );
        }
        // A flipped checksum byte itself is always a checksum mismatch.
        let mut corrupt = bytes.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x01;
        assert!(matches!(
            Trace::from_bytes(&corrupt),
            Err(TraceError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn count_mismatch_is_typed() {
        // Hand-build a stream whose trailer claims one extra event, with
        // a checksum recomputed to match (so only the count is wrong).
        let t = Trace {
            meta: sample_meta(),
            events: sample_events(),
        };
        let good = t.to_bytes();
        let body_end = good.len() - 9; // trailer tag at -10: [0xFF, count, sum*8]
        let mut forged: Vec<u8> = good[..body_end].to_vec();
        assert_eq!(forged[body_end - 1], 0xFF, "trailer tag located");
        forged.push(11); // count varint: says 11, stream holds 10
        forged.pop();
        // Recompute: easier via hashing all bytes then appending.
        let mut forged: Vec<u8> = good[..body_end].to_vec();
        forged.push(11);
        let mut hash = FNV_OFFSET;
        for &b in &forged {
            hash = (hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        forged.extend_from_slice(&hash.to_le_bytes());
        assert!(matches!(
            Trace::from_bytes(&forged),
            Err(TraceError::CountMismatch {
                stored: 11,
                read: 10
            })
        ));
    }

    #[test]
    fn errors_display_and_chain() {
        let e = TraceError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(matches!(e, TraceError::Truncated));
        let e = TraceError::Replay {
            index: 5,
            source: RegFileError::ReadUndefined(RegAddr::new(1, 2)),
        };
        assert!(e.to_string().contains("event 5"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(TraceError::BadTag(0x7E).to_string().contains("0x7e"));
    }

    #[test]
    fn cycle_deltas_reconstruct_monotone_stamps() {
        let t = Trace {
            meta: TraceMeta::default(),
            events: vec![
                TimedEvent {
                    cycle: 100,
                    event: RegEvent::SwitchTo { cid: 1 },
                },
                TimedEvent {
                    cycle: 100,
                    event: RegEvent::Read {
                        addr: RegAddr::new(1, 0),
                    },
                },
                TimedEvent {
                    cycle: 250,
                    event: RegEvent::SwitchTo { cid: 2 },
                },
            ],
        };
        let back = Trace::from_bytes(&t.to_bytes()).unwrap();
        let cycles: Vec<u64> = back.events.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![100, 100, 250]);
    }
}
