//! The register-file event vocabulary: everything an engine (or the
//! data cache its spills travel through) observes during a run.

use nsf_core::{Cid, RegAddr, Word};
use nsf_mem::Addr;
use std::fmt;

/// One engine-facing operation, as captured by the recording wrapper.
///
/// The stream covers the full [`nsf_core::RegisterFile`] surface —
/// accesses by `<Cid:offset>`, the three context-switch kinds, context
/// free, and the explicit per-register deallocation hint (paper §4.2) —
/// plus the program's own cached memory accesses. The latter belong in
/// a *register file* trace because spills and reloads go through the
/// data cache (paper Fig. 4): reload/spill cycle costs depend on cache
/// state, and cache state depends on the interleaved program traffic.
/// With both streams present, replay reproduces live-run
/// [`nsf_core::RegFileStats`] exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RegEvent {
    /// Register read access.
    Read {
        /// The register's `<Cid:offset>` name.
        addr: RegAddr,
    },
    /// Register write access (the written value rides along so replayed
    /// register and backing-store contents match the live run word for
    /// word, which lets `diff` compare values across engines).
    Write {
        /// The register's `<Cid:offset>` name.
        addr: RegAddr,
        /// The value written.
        value: Word,
    },
    /// Plain context switch (procedure return path).
    SwitchTo {
        /// The incoming context.
        cid: Cid,
    },
    /// Context switch via procedure call — the allocation edge of a
    /// fresh context's lifetime.
    CallPush {
        /// The callee's (new) context.
        cid: Cid,
    },
    /// Context switch via thread dispatch.
    ThreadSwitch {
        /// The dispatched thread's current context.
        cid: Cid,
    },
    /// Every register of the context was declared dead.
    FreeContext {
        /// The dying context.
        cid: Cid,
    },
    /// Explicit single-register deallocation hint (paper §4.2).
    FreeReg {
        /// The dead register's `<Cid:offset>` name.
        addr: RegAddr,
    },
    /// The program loaded from data memory through the data cache.
    MemRead {
        /// Virtual address of the access.
        addr: Addr,
    },
    /// The program stored to data memory through the data cache.
    MemWrite {
        /// Virtual address of the access.
        addr: Addr,
    },
}

impl RegEvent {
    /// `true` for the two program-memory events, `false` for the seven
    /// register-file operations.
    pub fn is_mem(&self) -> bool {
        matches!(self, RegEvent::MemRead { .. } | RegEvent::MemWrite { .. })
    }

    /// The context the event touches, if it names one.
    pub fn cid(&self) -> Option<Cid> {
        match *self {
            RegEvent::Read { addr } | RegEvent::Write { addr, .. } | RegEvent::FreeReg { addr } => {
                Some(addr.cid)
            }
            RegEvent::SwitchTo { cid }
            | RegEvent::CallPush { cid }
            | RegEvent::ThreadSwitch { cid }
            | RegEvent::FreeContext { cid } => Some(cid),
            RegEvent::MemRead { .. } | RegEvent::MemWrite { .. } => None,
        }
    }

    /// A short stable label for histograms and diff output.
    pub fn kind(&self) -> &'static str {
        match self {
            RegEvent::Read { .. } => "read",
            RegEvent::Write { .. } => "write",
            RegEvent::SwitchTo { .. } => "switch",
            RegEvent::CallPush { .. } => "call_push",
            RegEvent::ThreadSwitch { .. } => "thread_switch",
            RegEvent::FreeContext { .. } => "free_context",
            RegEvent::FreeReg { .. } => "free_reg",
            RegEvent::MemRead { .. } => "mem_read",
            RegEvent::MemWrite { .. } => "mem_write",
        }
    }
}

impl fmt::Display for RegEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RegEvent::Read { addr } => write!(f, "read {addr}"),
            RegEvent::Write { addr, value } => write!(f, "write {addr} = {value:#x}"),
            RegEvent::SwitchTo { cid } => write!(f, "switch -> {cid}"),
            RegEvent::CallPush { cid } => write!(f, "call_push -> {cid}"),
            RegEvent::ThreadSwitch { cid } => write!(f, "thread_switch -> {cid}"),
            RegEvent::FreeContext { cid } => write!(f, "free_context {cid}"),
            RegEvent::FreeReg { addr } => write!(f, "free_reg {addr}"),
            RegEvent::MemRead { addr } => write!(f, "mem_read {addr:#x}"),
            RegEvent::MemWrite { addr } => write!(f, "mem_write {addr:#x}"),
        }
    }
}

/// An event plus the simulator clock at which it was observed. Cycles
/// are informational (delta-encoded on disk, ignored by replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimedEvent {
    /// Simulator cycle stamp (from the most recent instruction issue).
    pub cycle: u64,
    /// The operation.
    pub event: RegEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_labels() {
        let r = RegEvent::Read {
            addr: RegAddr::new(3, 7),
        };
        assert!(!r.is_mem());
        assert_eq!(r.cid(), Some(3));
        assert_eq!(r.kind(), "read");
        assert_eq!(r.to_string(), "read <3:7>");

        let m = RegEvent::MemWrite { addr: 0x100 };
        assert!(m.is_mem());
        assert_eq!(m.cid(), None);
        assert!(m.to_string().contains("0x100"));

        assert_eq!(RegEvent::FreeContext { cid: 9 }.cid(), Some(9));
        assert_eq!(RegEvent::CallPush { cid: 2 }.kind(), "call_push");
    }
}
