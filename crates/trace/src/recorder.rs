//! The [`TraceRecorder`]: an [`EventSink`] that accumulates the
//! operation stream in memory, ready to be serialized as a
//! [`crate::Trace`].

use crate::event::{RegEvent, TimedEvent};
use nsf_core::{Cid, EventSink, RegAddr, Word};
use nsf_mem::Addr;
use std::cell::RefCell;
use std::rc::Rc;

/// An in-memory event accumulator.
///
/// Share one with the harness via [`TraceRecorder::shared`], hand a
/// clone to [`nsf_workloads::run_recorded`], and take the events back
/// with [`TraceRecorder::take_events`] when the run completes:
///
/// ```no_run
/// use nsf_trace::TraceRecorder;
/// # let workload = nsf_workloads::paper_suite(0).remove(0);
/// # let cfg = nsf_sim::SimConfig::default();
/// let rec = TraceRecorder::shared();
/// let report = nsf_workloads::run_recorded(&workload, cfg, rec.clone()).unwrap();
/// let events = rec.borrow_mut().take_events();
/// ```
#[derive(Default)]
pub struct TraceRecorder {
    cycle: u64,
    events: Vec<TimedEvent>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder behind the shared handle the harness
    /// expects (the concrete `Rc` coerces to [`nsf_core::SharedSink`]).
    pub fn shared() -> Rc<RefCell<TraceRecorder>> {
        Rc::new(RefCell::new(TraceRecorder::new()))
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Takes the recorded events, leaving the recorder empty.
    pub fn take_events(&mut self) -> Vec<TimedEvent> {
        std::mem::take(&mut self.events)
    }

    fn push(&mut self, event: RegEvent) {
        self.events.push(TimedEvent {
            cycle: self.cycle,
            event,
        });
    }
}

impl EventSink for TraceRecorder {
    fn clock(&mut self, cycle: u64) {
        self.cycle = cycle;
    }

    fn reg_read(&mut self, addr: RegAddr) {
        self.push(RegEvent::Read { addr });
    }

    fn reg_write(&mut self, addr: RegAddr, value: Word) {
        self.push(RegEvent::Write { addr, value });
    }

    fn switch_to(&mut self, cid: Cid) {
        self.push(RegEvent::SwitchTo { cid });
    }

    fn call_push(&mut self, cid: Cid) {
        self.push(RegEvent::CallPush { cid });
    }

    fn thread_switch(&mut self, cid: Cid) {
        self.push(RegEvent::ThreadSwitch { cid });
    }

    fn free_context(&mut self, cid: Cid) {
        self.push(RegEvent::FreeContext { cid });
    }

    fn free_reg(&mut self, addr: RegAddr) {
        self.push(RegEvent::FreeReg { addr });
    }

    fn mem_read(&mut self, addr: Addr) {
        self.push(RegEvent::MemRead { addr });
    }

    fn mem_write(&mut self, addr: Addr) {
        self.push(RegEvent::MemWrite { addr });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_call_order_with_clock_stamps() {
        let mut r = TraceRecorder::new();
        r.clock(3);
        r.reg_write(RegAddr::new(1, 0), 9);
        r.reg_read(RegAddr::new(1, 0));
        r.clock(7);
        r.mem_read(0x100);
        r.free_context(1);
        assert_eq!(r.len(), 4);
        let events = r.take_events();
        assert!(r.is_empty());
        assert_eq!(events[0].cycle, 3);
        assert_eq!(events[2].cycle, 7);
        assert_eq!(
            events[1].event,
            RegEvent::Read {
                addr: RegAddr::new(1, 0)
            }
        );
        assert_eq!(events[3].event, RegEvent::FreeContext { cid: 1 });
    }
}
