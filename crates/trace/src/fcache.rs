//! The frontend event-stream cache: pay a workload's frontend once.
//!
//! Every figure grid sweeps register-file organizations over a fixed
//! workload, so consecutive grid points re-execute an identical
//! fetch/decode/schedule/memory frontend. Lane batching
//! ([`nsf_sim::LaneSet`]) amortizes that inside one batched pass; this
//! module removes it from *every subsequent point of the sweep*: the
//! first point of each distinct workload/frontend runs live under a
//! [`FrontendProbe`] that records the frontend's architectural event
//! stream into a compact in-memory buffer (the `.nsftrace` varint
//! encoding layer, no file I/O — [`VarWriter`]/[`VarReader`]), and
//! every later frontend-equal point replays that buffer straight into
//! its [`EngineDispatch`] lane — no workload generation, no fetch, no
//! decode, no scheduling.
//!
//! ## The equivalence wall
//!
//! Replay is exact, and that claim is enforced three ways:
//!
//! - Every event that carries an architectural value (register reads,
//!   loads, atomics) stores the **live run's value** in the buffer, and
//!   every replay lane compares what its engine/memory produced against
//!   it — the first mismatch aborts with
//!   [`SimError::LaneDivergence`]. This is strictly stronger than lane
//!   batching's lane-vs-lane-0 check: replay is compared to the live
//!   capture itself.
//! - Replayed lanes end with real memory (inputs + program stores +
//!   spill frames), so [`replay_frontend`] validates every lane against
//!   the workload's own output check, exactly like
//!   [`nsf_workloads::run`].
//! - Decode errors (truncation, over-long varints, unknown tags) are
//!   typed [`TraceError`]s surfaced as [`SimError::BadConfig`] — a
//!   corrupt buffer can never silently produce statistics.
//!
//! ## Why replayed reports are exact
//!
//! For batchable programs the clock is write-only (see `lanes.rs`): a
//! lane's cycle count decomposes into the lane-invariant frontend
//! charges (recorded as one [`FrontendBuffer::shared_cycles`] sum) plus
//! its private register-file stalls and data-cache latencies, which the
//! replay regenerates by driving the real engine and a real per-lane
//! memory hierarchy through the recorded operation sequence. All other
//! frontend counters (instructions, class mix, calls, switches) are
//! lane-invariant and copied from the capture's report.

use crate::format::VarWriter;
use nsf_core::{Cid, EngineDispatch, LaneOp, RegAddr, RegisterFile};
use nsf_mem::{Addr, MemSystem, Word};
use nsf_sim::{
    FrontendProbe, LaneSet, LaneStore, OccupancySummary, RunReport, SimConfig, SimError,
    BACKING_STRIDE_WORDS,
};
use nsf_workloads::{Workload, WorkloadError};

// Frontend-cache event tags. Dense, disjoint per event kind; the buffer
// is in-memory and versionless (it never outlives the process), so the
// vocabulary can evolve freely.
const FTAG_READ: u8 = 1;
const FTAG_WRITE: u8 = 2;
const FTAG_SWITCH: u8 = 3;
const FTAG_CALL_PUSH: u8 = 4;
const FTAG_THREAD_SWITCH: u8 = 5;
const FTAG_FREE_CONTEXT: u8 = 6;
const FTAG_FREE_REG: u8 = 7;
const FTAG_LOAD: u8 = 8;
const FTAG_STORE: u8 = 9;
const FTAG_AMO: u8 = 10;
const FTAG_SAMPLE: u8 = 11;

/// A [`FrontendProbe`] that encodes the shared frontend's event stream
/// into a [`VarWriter`] as it happens. Attached to a single-lane
/// [`LaneSet`] run by [`capture_frontend`].
#[derive(Debug, Default)]
struct FrontendRecorder {
    w: VarWriter,
    events: u64,
    shared_cycles: u64,
}

impl FrontendProbe for FrontendRecorder {
    fn reg_op(&mut self, op: LaneOp, value: Option<Word>) {
        self.events += 1;
        match op {
            LaneOp::Read(a) => {
                self.w.put_u8(FTAG_READ);
                self.w.put_varint(u64::from(a.cid));
                self.w.put_u8(a.offset);
                // The live value: replay lanes must reproduce it.
                self.w
                    .put_varint(u64::from(value.expect("reads return a value")));
            }
            LaneOp::Write(a, v) => {
                self.w.put_u8(FTAG_WRITE);
                self.w.put_varint(u64::from(a.cid));
                self.w.put_u8(a.offset);
                self.w.put_varint(u64::from(v));
            }
            LaneOp::SwitchTo(cid) => {
                self.w.put_u8(FTAG_SWITCH);
                self.w.put_varint(u64::from(cid));
            }
            LaneOp::CallPush(cid) => {
                self.w.put_u8(FTAG_CALL_PUSH);
                self.w.put_varint(u64::from(cid));
            }
            LaneOp::ThreadSwitch(cid) => {
                self.w.put_u8(FTAG_THREAD_SWITCH);
                self.w.put_varint(u64::from(cid));
            }
            LaneOp::FreeContext(cid) => {
                self.w.put_u8(FTAG_FREE_CONTEXT);
                self.w.put_varint(u64::from(cid));
            }
            LaneOp::FreeReg(a) => {
                self.w.put_u8(FTAG_FREE_REG);
                self.w.put_varint(u64::from(a.cid));
                self.w.put_u8(a.offset);
            }
        }
    }

    fn mem_load(&mut self, addr: Addr, value: Word) {
        self.events += 1;
        self.w.put_u8(FTAG_LOAD);
        self.w.put_varint(u64::from(addr));
        self.w.put_varint(u64::from(value));
    }

    fn mem_store(&mut self, addr: Addr, value: Word) {
        self.events += 1;
        self.w.put_u8(FTAG_STORE);
        self.w.put_varint(u64::from(addr));
        self.w.put_varint(u64::from(value));
    }

    fn mem_amo(&mut self, addr: Addr, delta: i32, old: Word) {
        self.events += 1;
        self.w.put_u8(FTAG_AMO);
        self.w.put_varint(u64::from(addr));
        self.w.put_varint_signed(i64::from(delta));
        self.w.put_varint(u64::from(old));
    }

    fn shared_charge(&mut self, cycles: u32) {
        // Cycle accumulation is commutative, so the lane-invariant part
        // of the clock needs no per-event entries — one sum suffices.
        self.shared_cycles += u64::from(cycles);
    }

    fn occupancy_sample(&mut self) {
        self.events += 1;
        self.w.put_u8(FTAG_SAMPLE);
    }
}

/// One workload/frontend's captured event stream plus everything a
/// replay needs: the frontend configuration it is valid for, the
/// lane-invariant cycle total, and the capture run's full report (the
/// template for a replayed report's shared fields — and itself the
/// capture point's result).
#[derive(Debug)]
pub struct FrontendBuffer {
    /// The configuration the capture ran under. Replay is legal for any
    /// configuration with [`SimConfig::frontend_eq`] to this one.
    pub cfg: SimConfig,
    /// The encoded event stream (crate-visible so `crate::store` can
    /// persist and reconstruct buffers without re-encoding).
    pub(crate) bytes: Vec<u8>,
    /// Number of events encoded.
    pub events: u64,
    /// Sum of the lane-invariant frontend cycle charges.
    pub shared_cycles: u64,
    /// The capture run's validated report (bit-identical to
    /// [`nsf_workloads::run`] under the same configuration).
    pub report: RunReport,
}

impl FrontendBuffer {
    /// Encoded size in bytes (diagnostics; ~4 B/event like `.nsftrace`).
    pub fn encoded_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Runs `workload` under `cfg` live — single-lane [`LaneSet`], output
/// validated by the workload's check — while recording the frontend
/// event stream. Returns the buffer; its [`FrontendBuffer::report`] is
/// the capture point's own result.
pub fn capture_frontend(
    workload: &Workload,
    cfg: SimConfig,
) -> Result<FrontendBuffer, WorkloadError> {
    let mut rec = FrontendRecorder {
        // Scale-1 streams run to megabytes; reserving up front keeps the
        // encoder out of the vector's doubling copies.
        w: VarWriter::with_capacity(1 << 20),
        events: 0,
        shared_cycles: 0,
    };
    let mut lanes = LaneSet::new(workload.program.clone(), std::slice::from_ref(&cfg))?;
    for (addr, words) in &workload.mem_init {
        lanes.poke_block(*addr, words);
    }
    let mut reports = lanes.run_probed(&mut rec)?;
    (workload.check)(lanes.lane_mem(0)).map_err(|detail| WorkloadError::CheckFailed {
        name: workload.name,
        detail,
    })?;
    let report = reports.pop().expect("single-lane capture has one report");
    Ok(FrontendBuffer {
        cfg,
        bytes: rec.w.into_bytes(),
        events: rec.events,
        shared_cycles: rec.shared_cycles,
        report,
    })
}

/// Replays `buf` into every configuration in `cfgs` and returns one
/// report per configuration — bit-identical to what
/// [`nsf_workloads::run`] would return for each, with every lane's
/// final memory validated against the workload's check. The buffer is
/// decoded **once** into a flat replay program; each lane then runs as
/// its own tight engine+memory pass over it (lanes are independent, so
/// per-lane sequencing and per-event lockstep produce identical
/// results — the former keeps one lane's engine and cache state hot).
/// Any divergence from the recorded live values aborts with
/// [`SimError::LaneDivergence`]; corrupt buffers abort with
/// [`SimError::BadConfig`].
pub fn replay_frontend(
    buf: &FrontendBuffer,
    workload: &Workload,
    cfgs: &[SimConfig],
) -> Result<Vec<RunReport>, WorkloadError> {
    let mut set = ReplaySet::new(buf, cfgs)?;
    for (addr, words) in &workload.mem_init {
        set.poke_block(*addr, words);
    }
    set.run(buf)?;
    for i in 0..cfgs.len() {
        (workload.check)(&set.stores[i].mem).map_err(|detail| WorkloadError::CheckFailed {
            name: workload.name,
            detail: format!("cached-replay lane {i}: {detail}"),
        })?;
    }
    Ok(set.reports(buf))
}

/// Replay op kinds are the `FTAG_*` event tags plus two ops the decoder
/// synthesizes for Ctable maintenance.
const RTAG_MAP: u8 = 12;
const RTAG_UNMAP: u8 = 13;

/// One decoded frontend event in flat replay form (20 bytes): a kind
/// byte that dispatches directly, the operand fields, and the event
/// index for error reporting. Ctable maintenance is resolved at decode
/// time into explicit [`RTAG_MAP`]/[`RTAG_UNMAP`] entries — the decision
/// (first switch to a context since its last free) is lane-invariant, so
/// it is made once per buffer instead of once per lane. Mapping at first
/// switch is equivalent to the live machine's map-at-allocation because
/// a mapping is unobservable until the engine spills, which can only
/// happen after the context became current.
#[derive(Clone, Copy, Debug)]
struct ReplayOp {
    /// `FTAG_*` event tag, or `RTAG_MAP`/`RTAG_UNMAP`.
    kind: u8,
    /// Register offset within the context (register ops).
    off: u8,
    /// Context ID (register and Ctable ops).
    cid: Cid,
    /// First payload word: the live run's value for reads, the written
    /// value for writes, the memory address for loads/stores/atomics,
    /// the context's backing base address for maps.
    a: u32,
    /// Second payload word: the live run's value for loads, the stored
    /// value for stores, the delta (two's complement) for atomics.
    b: u32,
    /// Third payload word: the live run's old value for atomics.
    c: u32,
    /// Event index in the capture stream (error reporting only).
    pc: u32,
}

/// Decode-time cursor. [`VarReader`] is the same encoding, but its
/// per-field `Result` plumbing costs real time at half a dozen calls per
/// event times hundreds of thousands of events; this cursor keeps the
/// reads `Option`-shaped and fully inlined, and the (cold) error
/// formatting lives in [`corrupt_at`].
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    #[inline(always)]
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }

    #[inline(always)]
    fn varint(&mut self) -> Option<u64> {
        let b0 = *self.bytes.get(self.pos)?;
        self.pos += 1;
        if b0 < 0x80 {
            return Some(u64::from(b0));
        }
        let mut v = u64::from(b0 & 0x7F);
        let mut shift = 7u32;
        loop {
            let byte = *self.bytes.get(self.pos)?;
            self.pos += 1;
            if shift >= 64 || (shift == 63 && byte > 1) {
                // Tenth byte: only bit 0 still fits a u64 and it must
                // terminate — reject over-long and overflowing varints
                // instead of silently truncating (`x << 63` keeps only
                // the low payload bit).
                return None;
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Some(v);
            }
            shift += 7;
        }
    }

    #[inline(always)]
    fn u16v(&mut self) -> Option<u16> {
        u16::try_from(self.varint()?).ok()
    }

    #[inline(always)]
    fn u32v(&mut self) -> Option<u32> {
        u32::try_from(self.varint()?).ok()
    }

    #[inline(always)]
    fn i32v(&mut self) -> Option<i32> {
        let z = self.varint()?;
        i32::try_from(((z >> 1) as i64) ^ -((z & 1) as i64)).ok()
    }
}

/// Truncated buffer or a varint overflowing its field.
#[cold]
fn corrupt_at(event: u64) -> SimError {
    SimError::BadConfig(format!(
        "frontend cache buffer corrupt: truncated or malformed field at event {event}"
    ))
}

/// Decodes the whole event stream into a flat replay program — paid
/// once per replay set, not once per lane. Truncation, over-long
/// varints and unknown tags surface as [`SimError::BadConfig`].
fn decode_ops(buf: &FrontendBuffer) -> Result<Vec<ReplayOp>, SimError> {
    let mut cur = Cursor {
        bytes: &buf.bytes,
        pos: 0,
    };
    // ~4.5 encoded bytes per event.
    let mut ops = Vec::with_capacity(buf.bytes.len() / 4 + 16);
    // `mapped[cid]`: Ctable entry built (lane-invariant — every lane
    // maps the same contexts at the same events).
    let mut mapped: Vec<bool> = Vec::new();
    let backing_base = buf.cfg.backing_base;
    let mut event: u64 = 0;
    macro_rules! field {
        ($read:expr) => {
            match $read {
                Some(v) => v,
                None => return Err(corrupt_at(event)),
            }
        };
    }
    fn ensure_mapped(ops: &mut Vec<ReplayOp>, mapped: &mut Vec<bool>, base: Addr, cid: Cid) {
        let i = usize::from(cid);
        if i >= mapped.len() {
            mapped.resize(i + 1, false);
        }
        if !mapped[i] {
            ops.push(ReplayOp {
                kind: RTAG_MAP,
                off: 0,
                cid,
                a: base + Addr::from(cid) * BACKING_STRIDE_WORDS,
                b: 0,
                c: 0,
                pc: 0,
            });
            mapped[i] = true;
        }
    }
    while cur.pos < cur.bytes.len() {
        let tag = cur.bytes[cur.pos];
        cur.pos += 1;
        let pc = u32::try_from(event).unwrap_or(u32::MAX);
        match tag {
            FTAG_READ | FTAG_WRITE => {
                let cid = field!(cur.u16v());
                let off = field!(cur.u8());
                let a = field!(cur.u32v());
                ops.push(ReplayOp {
                    kind: tag,
                    off,
                    cid,
                    a,
                    b: 0,
                    c: 0,
                    pc,
                });
            }
            FTAG_SWITCH | FTAG_CALL_PUSH | FTAG_THREAD_SWITCH => {
                let cid = field!(cur.u16v());
                ensure_mapped(&mut ops, &mut mapped, backing_base, cid);
                ops.push(ReplayOp {
                    kind: tag,
                    off: 0,
                    cid,
                    a: 0,
                    b: 0,
                    c: 0,
                    pc,
                });
            }
            FTAG_FREE_CONTEXT => {
                let cid = field!(cur.u16v());
                ops.push(ReplayOp {
                    kind: tag,
                    off: 0,
                    cid,
                    a: 0,
                    b: 0,
                    c: 0,
                    pc,
                });
                ops.push(ReplayOp {
                    kind: RTAG_UNMAP,
                    off: 0,
                    cid,
                    a: 0,
                    b: 0,
                    c: 0,
                    pc,
                });
                if let Some(m) = mapped.get_mut(usize::from(cid)) {
                    *m = false;
                }
            }
            FTAG_FREE_REG => {
                let cid = field!(cur.u16v());
                let off = field!(cur.u8());
                ops.push(ReplayOp {
                    kind: tag,
                    off,
                    cid,
                    a: 0,
                    b: 0,
                    c: 0,
                    pc,
                });
            }
            FTAG_LOAD | FTAG_STORE => {
                let a = field!(cur.u32v());
                let b = field!(cur.u32v());
                ops.push(ReplayOp {
                    kind: tag,
                    off: 0,
                    cid: 0,
                    a,
                    b,
                    c: 0,
                    pc,
                });
            }
            FTAG_AMO => {
                let a = field!(cur.u32v());
                let delta = field!(cur.i32v());
                let c = field!(cur.u32v());
                ops.push(ReplayOp {
                    kind: tag,
                    off: 0,
                    cid: 0,
                    a,
                    b: delta as u32,
                    c,
                    pc,
                });
            }
            FTAG_SAMPLE => ops.push(ReplayOp {
                kind: tag,
                off: 0,
                cid: 0,
                a: 0,
                b: 0,
                c: 0,
                pc,
            }),
            other => {
                return Err(SimError::BadConfig(format!(
                    "frontend cache buffer corrupt: unknown event tag {other} \
                     at event {event}"
                )))
            }
        }
        event += 1;
    }
    if event != buf.events {
        return Err(SimError::BadConfig(format!(
            "frontend cache buffer corrupt: decoded {event} events, \
             capture recorded {}",
            buf.events
        )));
    }
    Ok(ops)
}

/// N engine lanes driven by a decoded [`FrontendBuffer`] instead of a
/// live frontend: register files, per-lane memory hierarchies and
/// clocks.
struct ReplaySet {
    regfiles: Vec<EngineDispatch>,
    stores: Vec<LaneStore>,
    clocks: Vec<u64>,
    occupancy: Vec<OccupancySummary>,
}

impl ReplaySet {
    fn new(buf: &FrontendBuffer, cfgs: &[SimConfig]) -> Result<Self, SimError> {
        if cfgs.is_empty() {
            return Err(SimError::BadConfig(
                "a replay set needs at least one configuration".into(),
            ));
        }
        for cfg in cfgs {
            if !cfg.frontend_eq(&buf.cfg) {
                return Err(SimError::BadConfig(
                    "replay configuration's frontend differs from the captured \
                     one; the cached event stream would not be valid for it"
                        .into(),
                ));
            }
            let spill_regs = cfg.regfile.max_spill_regs();
            if spill_regs > BACKING_STRIDE_WORDS {
                return Err(SimError::BadConfig(format!(
                    "organization can spill {spill_regs} words per context, \
                     overflowing the {BACKING_STRIDE_WORDS}-word backing stride: \
                     context save areas would overlap"
                )));
            }
        }
        Ok(ReplaySet {
            regfiles: cfgs.iter().map(|c| c.regfile.build()).collect(),
            stores: cfgs
                .iter()
                .map(|c| LaneStore::new(MemSystem::new(c.mem)))
                .collect(),
            clocks: vec![0; cfgs.len()],
            occupancy: vec![OccupancySummary::default(); cfgs.len()],
        })
    }

    fn poke_block(&mut self, addr: Addr, words: &[Word]) {
        for s in &mut self.stores {
            s.mem.poke_block(addr, words);
        }
    }

    /// Decodes the event stream once, then drives every lane through it
    /// in lockstep: each decoded op is fetched and dispatched once and
    /// applied to every lane while it is hot, so the op-stream traffic
    /// and dispatch cost are paid once per *group* instead of once per
    /// lane. The engines' combined state is small next to the
    /// multi-megabyte op stream, so lockstep keeps every lane's register
    /// file resident; lanes are independent, so any interleaving
    /// produces identical results. Every value-bearing event is checked
    /// against the recording — the first disagreement fails the run.
    fn run(&mut self, buf: &FrontendBuffer) -> Result<(), SimError> {
        let ops = decode_ops(buf)?;
        for op in &ops {
            self.step_all(op)?;
        }
        Ok(())
    }

    /// Applies one decoded op to every lane.
    fn step_all(&mut self, op: &ReplayOp) -> Result<(), SimError> {
        let pc = op.pc;
        match op.kind {
            FTAG_READ => self.reg_all(LaneOp::Read(RegAddr::new(op.cid, op.off)), Some(op.a), pc),
            FTAG_WRITE => self.reg_all(LaneOp::Write(RegAddr::new(op.cid, op.off), op.a), None, pc),
            FTAG_SWITCH => self.reg_all(LaneOp::SwitchTo(op.cid), None, pc),
            FTAG_CALL_PUSH => self.reg_all(LaneOp::CallPush(op.cid), None, pc),
            FTAG_THREAD_SWITCH => self.reg_all(LaneOp::ThreadSwitch(op.cid), None, pc),
            FTAG_FREE_CONTEXT => self.reg_all(LaneOp::FreeContext(op.cid), None, pc),
            FTAG_FREE_REG => self.reg_all(LaneOp::FreeReg(RegAddr::new(op.cid, op.off)), None, pc),
            FTAG_LOAD => {
                for (lane, (store, clock)) in
                    self.stores.iter_mut().zip(&mut self.clocks).enumerate()
                {
                    let (v, cycles) = store.mem.load(op.a);
                    *clock += u64::from(cycles);
                    if v != op.b {
                        return Err(SimError::LaneDivergence {
                            pc,
                            lane,
                            detail: format!(
                                "cached replay of load {:#x} (event {pc}) read {v}, \
                                 live run recorded {}",
                                op.a, op.b
                            ),
                        });
                    }
                }
                Ok(())
            }
            FTAG_STORE => {
                for (store, clock) in self.stores.iter_mut().zip(&mut self.clocks) {
                    *clock += u64::from(store.mem.store(op.a, op.b));
                }
                Ok(())
            }
            FTAG_AMO => {
                let delta = op.b as i32;
                for (lane, (store, clock)) in
                    self.stores.iter_mut().zip(&mut self.clocks).enumerate()
                {
                    let (old, cycles) = store.mem.fetch_add(op.a, delta);
                    *clock += u64::from(cycles);
                    if old != op.c {
                        return Err(SimError::LaneDivergence {
                            pc,
                            lane,
                            detail: format!(
                                "cached replay of amoadd {:#x} (event {pc}) read {old}, \
                                 live run recorded {}",
                                op.a, op.c
                            ),
                        });
                    }
                }
                Ok(())
            }
            FTAG_SAMPLE => {
                for (occ, rf) in self.occupancy.iter_mut().zip(&self.regfiles) {
                    occ.record(rf.occupancy());
                }
                Ok(())
            }
            RTAG_MAP => {
                for store in &mut self.stores {
                    store.mem.ctable_mut().map(op.cid, op.a);
                }
                Ok(())
            }
            RTAG_UNMAP => {
                for store in &mut self.stores {
                    store.mem.ctable_mut().unmap(op.cid);
                }
                Ok(())
            }
            other => unreachable!("decode_ops admits no tag {other}"),
        }
    }

    /// Applies one register-file op to every lane, checking each lane's
    /// result against the live run's recorded value.
    fn reg_all(&mut self, rop: LaneOp, expect: Option<Word>, pc: u32) -> Result<(), SimError> {
        for (lane, ((rf, store), clock)) in self
            .regfiles
            .iter_mut()
            .zip(self.stores.iter_mut())
            .zip(self.clocks.iter_mut())
            .enumerate()
        {
            match rf.apply_op(rop, store) {
                Ok(step) => {
                    *clock += u64::from(step.stall_cycles);
                    if step.value != expect {
                        return Err(SimError::LaneDivergence {
                            pc,
                            lane,
                            detail: format!(
                                "cached replay of {rop:?} (event {pc}) returned {:?}, \
                                 live run recorded {expect:?}",
                                step.value
                            ),
                        });
                    }
                }
                Err(source) => return Err(SimError::RegFile { pc, source }),
            }
        }
        Ok(())
    }

    fn reports(&self, buf: &FrontendBuffer) -> Vec<RunReport> {
        (0..self.regfiles.len())
            .map(|i| {
                let mut r = buf.report.clone();
                r.cycles = buf.shared_cycles + self.clocks[i];
                r.regfile = *self.regfiles[i].stats();
                r.regfile_desc = self.regfiles[i].describe();
                r.regfile_capacity = self.regfiles[i].capacity();
                r.dcache = self.stores[i].mem.dcache_stats();
                r.occupancy = self.occupancy[i];
                r
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::VarReader;
    use nsf_core::SpillEngine;
    use nsf_sim::RegFileSpec;

    fn five_specs() -> Vec<SimConfig> {
        [
            RegFileSpec::paper_nsf(64),
            RegFileSpec::paper_segmented(4, 32),
            RegFileSpec::Conventional {
                regs: 32,
                engine: SpillEngine::hardware(),
            },
            RegFileSpec::sparc_windows(32),
            RegFileSpec::Oracle,
        ]
        .into_iter()
        .map(SimConfig::with_regfile)
        .collect()
    }

    #[test]
    fn capture_report_matches_live_run() {
        let w = nsf_workloads::gatesim::build(0);
        let cfg = SimConfig::with_regfile(RegFileSpec::paper_nsf(80));
        let live = nsf_workloads::run(&w, cfg).unwrap();
        let buf = capture_frontend(&w, cfg).unwrap();
        assert_eq!(buf.report, live, "capture must be observational");
        assert!(buf.events > 0);
        assert!(buf.encoded_len() > 0);
        assert!(buf.shared_cycles <= live.cycles);
    }

    #[test]
    fn replay_reproduces_live_reports_across_families() {
        let w = nsf_workloads::gatesim::build(0);
        let cfgs = five_specs();
        let buf = capture_frontend(&w, cfgs[0]).unwrap();
        let replayed = replay_frontend(&buf, &w, &cfgs).unwrap();
        for (cfg, rep) in cfgs.iter().zip(&replayed) {
            let live = nsf_workloads::run(&w, *cfg).unwrap();
            assert_eq!(*rep, live, "{}", rep.regfile_desc);
        }
    }

    #[test]
    fn replay_with_capture_config_is_bit_identical() {
        let w = nsf_workloads::gatesim::build(0);
        let cfg = SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 32));
        let buf = capture_frontend(&w, cfg).unwrap();
        let replayed = replay_frontend(&buf, &w, &[cfg]).unwrap();
        assert_eq!(replayed[0], buf.report);
    }

    #[test]
    fn mismatched_frontend_rejected() {
        let w = nsf_workloads::gatesim::build(0);
        let cfg = SimConfig::default();
        let buf = capture_frontend(&w, cfg).unwrap();
        let other = SimConfig {
            sample_interval: cfg.sample_interval + 1,
            ..cfg
        };
        let err = replay_frontend(&buf, &w, &[other]).unwrap_err();
        assert!(matches!(err, WorkloadError::Sim(SimError::BadConfig(_))));
    }

    #[test]
    fn cursor_varint_rejects_overflow_and_overlength() {
        let cur = |bytes: &[u8]| Cursor { bytes, pos: 0 }.varint();
        // u64::MAX is the widest legal encoding (nine 0xFF, then 0x01).
        let mut max = vec![0xFFu8; 9];
        max.push(0x01);
        assert_eq!(cur(&max), Some(u64::MAX));
        // Tenth-byte payload above bit 0 overflows a u64; a tenth-byte
        // continuation bit makes it over-long. Both must decode to None
        // (the caller reports a typed corruption error), never wrap.
        let mut over = vec![0xFFu8; 9];
        over.push(0x03);
        assert_eq!(cur(&over), None);
        let mut eleven = vec![0xFFu8; 10];
        eleven.push(0x00);
        assert_eq!(cur(&eleven), None);
        assert_eq!(cur(&[0xFF; 16]), None);
    }

    #[test]
    fn corrupt_buffer_is_a_typed_error() {
        let w = nsf_workloads::gatesim::build(0);
        let cfg = SimConfig::default();
        let mut buf = capture_frontend(&w, cfg).unwrap();
        buf.bytes.truncate(buf.bytes.len() / 2);
        let err = replay_frontend(&buf, &w, &[cfg]).unwrap_err();
        let WorkloadError::Sim(SimError::BadConfig(msg)) = &err else {
            panic!("expected BadConfig, got {err:?}");
        };
        assert!(msg.contains("corrupt"), "{msg}");
    }

    #[test]
    fn tampered_value_trips_the_divergence_wall() {
        let w = nsf_workloads::gatesim::build(0);
        let cfg = SimConfig::default();
        let mut buf = capture_frontend(&w, cfg).unwrap();
        // Flip the recorded value of the first read event: replay must
        // notice the engine no longer agrees with the "live" recording.
        let mut r = VarReader::new(&buf.bytes);
        let mut patch_at = None;
        while !r.done() {
            let tag = r.get_u8().unwrap();
            match tag {
                FTAG_READ => {
                    r.get_u16().unwrap();
                    r.get_u8().unwrap();
                    patch_at = Some(r.pos());
                    break;
                }
                FTAG_WRITE => {
                    r.get_u16().unwrap();
                    r.get_u8().unwrap();
                    r.get_u32().unwrap();
                }
                FTAG_SWITCH | FTAG_CALL_PUSH | FTAG_THREAD_SWITCH | FTAG_FREE_CONTEXT => {
                    r.get_u16().unwrap();
                }
                FTAG_FREE_REG => {
                    r.get_u16().unwrap();
                    r.get_u8().unwrap();
                }
                FTAG_LOAD | FTAG_STORE => {
                    r.get_u32().unwrap();
                    r.get_u32().unwrap();
                }
                FTAG_AMO => {
                    r.get_u32().unwrap();
                    r.get_varint_signed().unwrap();
                    r.get_u32().unwrap();
                }
                FTAG_SAMPLE => {}
                other => panic!("unknown tag {other}"),
            }
        }
        let at = patch_at.expect("gatesim reads registers");
        // Single-byte varints (< 0x80) can be flipped in place without
        // breaking the framing; skip the (rare) multi-byte case.
        if buf.bytes[at] < 0x80 {
            buf.bytes[at] ^= 1;
            let err = replay_frontend(&buf, &w, &[cfg]).unwrap_err();
            assert!(
                matches!(err, WorkloadError::Sim(SimError::LaneDivergence { .. })),
                "expected LaneDivergence, got {err:?}"
            );
        }
    }
}
