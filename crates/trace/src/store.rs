//! Persistent content-addressed store for captured frontend streams.
//!
//! [`crate::fcache`] pays each workload's frontend once *per process*;
//! this module makes that capture an artifact that outlives the process.
//! A [`StreamStore`] is a directory (by convention `results/store/`) of
//! `.nsfs` files, one per captured [`FrontendBuffer`], each named by and
//! keyed on a **content fingerprint** over everything that determines
//! the event stream:
//!
//! * the workload's full content — name, encoded program words, entry
//!   point, and every staged memory block (workload id + seed + scale
//!   are all reflected here, since the generators are deterministic);
//! * every frontend-relevant [`SimConfig`] field, exactly the
//!   [`SimConfig::frontend_eq`] set, via
//!   [`SimConfig::frontend_fingerprint_fields`];
//! * the store format and fingerprint-schema versions.
//!
//! Two sweep points agree on the fingerprint **iff** a stream captured
//! for one is a valid replay source for the other, so any binary or run
//! that captured a stream earlier can serve any later one — including
//! singleton and narrow frontend groups that are too small to amortize
//! a live capture on their own.
//!
//! ## Trust: never
//!
//! A store entry is an optimization, never an authority. The file
//! carries the `.nsftrace` discipline — magic, version byte, and a
//! trailing FNV-1a-64 checksum over the whole body — and every failure
//! mode (foreign magic, unknown version, truncation, bit corruption,
//! fingerprint mismatch) is a typed [`StoreError`]; callers fall back
//! to live capture. Even a loaded stream is still subject to the full
//! equivalence wall: replay checks every value-bearing event against
//! the recording ([`nsf_sim::SimError::LaneDivergence`]) and every lane
//! against the workload's output check, so a corrupted-but-checksummed
//! entry can never silently produce statistics.

use crate::fcache::FrontendBuffer;
use crate::format::{VarReader, VarWriter};
use nsf_core::RegFileStats;
use nsf_mem::CacheStats;
use nsf_sim::{OccupancySummary, RunReport, SimConfig};
use nsf_workloads::Workload;
use std::fmt;
use std::io::{self, ErrorKind};
use std::path::{Path, PathBuf};

/// File magic for persisted stream entries ("Named-State File Stream").
pub const STORE_MAGIC: [u8; 4] = *b"NSFS";

/// Store format version. Bump on any change to the entry layout; old
/// entries are then rejected as [`StoreError::UnsupportedVersion`] and
/// recaptured live. The version also feeds [`stream_fingerprint`], so a
/// bump changes every key as well.
pub const STORE_VERSION: u8 = 1;

/// Checksum width: one FNV-1a-64 sum, little-endian, at the very end of
/// the file (the `.nsftrace` trailer discipline, fixed-width so it can
/// be located from the tail).
const CHECKSUM_BYTES: usize = 8;

/// Everything that can go wrong loading or validating a store entry.
/// Every variant is a *reject and recapture live* signal — none is
/// fatal to the run that hits it.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure (not "file absent" — that is a plain miss).
    Io(io::Error),
    /// The file does not start with [`STORE_MAGIC`].
    BadMagic([u8; 4]),
    /// The file's version byte is not [`STORE_VERSION`].
    UnsupportedVersion(u8),
    /// The file ends mid-field (torn write / truncation).
    Truncated,
    /// The trailing checksum does not match the body.
    ChecksumMismatch {
        /// Checksum stored in the trailer.
        stored: u64,
        /// Checksum recomputed over the body.
        computed: u64,
    },
    /// The entry's embedded fingerprint is not the requested one (a
    /// renamed or misfiled entry).
    FingerprintMismatch {
        /// Fingerprint the caller asked for.
        expected: u64,
        /// Fingerprint found in the entry.
        found: u64,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic(m) => write!(f, "not a stream-store entry (magic {m:02x?})"),
            StoreError::UnsupportedVersion(v) => {
                write!(f, "unsupported stream-store version {v}")
            }
            StoreError::Truncated => write!(f, "stream-store entry truncated"),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "stream-store checksum mismatch: stored {stored:#018x}, \
                 computed {computed:#018x}"
            ),
            StoreError::FingerprintMismatch { expected, found } => write!(
                f,
                "stream-store fingerprint mismatch: expected {expected:#018x}, \
                 entry holds {found:#018x}"
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        if e.kind() == ErrorKind::UnexpectedEof {
            StoreError::Truncated
        } else {
            StoreError::Io(e)
        }
    }
}

/// Incremental FNV-1a-64 (the `.nsftrace`/`.nsfx` checksum function).
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn word(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(self) -> u64 {
        self.0
    }
}

/// Content fingerprint for `workload`'s frontend event stream under
/// `cfg`: an FNV-1a-64 over the store version, the workload's full
/// content (name, program words, entry point, staged memory), and the
/// [`SimConfig::frontend_fingerprint_fields`] sequence. Returns `None`
/// when the program cannot be encoded to words (such a workload simply
/// bypasses the store). Any change to a fingerprint input — workload
/// generator output, frontend configuration, either format version —
/// produces a new key, which is the store's entire invalidation rule.
pub fn stream_fingerprint(workload: &Workload, cfg: &SimConfig) -> Option<u64> {
    let words = workload.program.to_words().ok()?;
    let mut h = Fnv64::new();
    h.word(u64::from(STORE_VERSION));
    h.word(workload.name.len() as u64);
    h.bytes(workload.name.as_bytes());
    h.word(words.len() as u64);
    for w in &words {
        h.word(u64::from(*w));
    }
    h.word(u64::from(workload.program.entry()));
    h.word(workload.mem_init.len() as u64);
    for (addr, block) in &workload.mem_init {
        h.word(u64::from(*addr));
        h.word(block.len() as u64);
        for w in block {
            h.word(u64::from(*w));
        }
    }
    cfg.frontend_fingerprint_fields(&mut |v| h.word(v));
    Some(h.finish())
}

/// Serializes `buf` into a self-checking store entry for `fingerprint`.
pub fn encode_stream(fingerprint: u64, buf: &FrontendBuffer) -> Vec<u8> {
    let mut w = VarWriter::with_capacity(buf.bytes.len() + 256);
    for b in STORE_MAGIC {
        w.put_u8(b);
    }
    w.put_u8(STORE_VERSION);
    w.put_varint(fingerprint);
    w.put_varint(buf.events);
    w.put_varint(buf.shared_cycles);
    encode_report(&mut w, &buf.report);
    w.put_varint(buf.bytes.len() as u64);
    let mut out = w.into_bytes();
    out.extend_from_slice(&buf.bytes);
    let mut h = Fnv64::new();
    h.bytes(&out);
    let sum = h.finish();
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// Checks magic, version, checksum, and embedded fingerprint of a raw
/// entry without materializing the buffer (what `store_tool` runs over
/// every file). [`decode_stream`] builds on the same checks.
pub fn validate_stream_bytes(bytes: &[u8], expected: u64) -> Result<(), StoreError> {
    let body = checked_body(bytes)?;
    let mut r = VarReader::new(&body[STORE_MAGIC.len() + 1..]);
    let found = r.get_varint().map_err(|_| StoreError::Truncated)?;
    if found != expected {
        return Err(StoreError::FingerprintMismatch { expected, found });
    }
    Ok(())
}

/// Verifies framing and checksum, returning the body (everything before
/// the trailer) with magic and version already validated.
fn checked_body(bytes: &[u8]) -> Result<&[u8], StoreError> {
    // Checksum first: nothing in a damaged file is worth parsing.
    if bytes.len() < STORE_MAGIC.len() + 1 + CHECKSUM_BYTES {
        return Err(StoreError::Truncated);
    }
    if bytes[..STORE_MAGIC.len()] != STORE_MAGIC {
        let mut m = [0u8; 4];
        m.copy_from_slice(&bytes[..4]);
        return Err(StoreError::BadMagic(m));
    }
    let version = bytes[STORE_MAGIC.len()];
    if version != STORE_VERSION {
        return Err(StoreError::UnsupportedVersion(version));
    }
    let (body, trailer) = bytes.split_at(bytes.len() - CHECKSUM_BYTES);
    let stored = u64::from_le_bytes(trailer.try_into().expect("trailer is 8 bytes"));
    let mut h = Fnv64::new();
    h.bytes(body);
    let computed = h.finish();
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    Ok(body)
}

/// Decodes a store entry back into a [`FrontendBuffer`]. `cfg` becomes
/// the buffer's configuration: the fingerprint covers exactly the
/// [`SimConfig::frontend_eq`] field set, so a fingerprint match proves
/// the entry was captured under a frontend-equal configuration and the
/// caller's own is interchangeable with the original.
pub fn decode_stream(
    bytes: &[u8],
    expected: u64,
    cfg: &SimConfig,
) -> Result<FrontendBuffer, StoreError> {
    let body = checked_body(bytes)?;
    let mut r = VarReader::new(&body[STORE_MAGIC.len() + 1..]);
    let trunc = |_| StoreError::Truncated;
    let found = r.get_varint().map_err(trunc)?;
    if found != expected {
        return Err(StoreError::FingerprintMismatch { expected, found });
    }
    let events = r.get_varint().map_err(trunc)?;
    let shared_cycles = r.get_varint().map_err(trunc)?;
    let report = decode_report(&mut r)?;
    let stream_len = usize::try_from(r.get_varint().map_err(trunc)?).map_err(|_| {
        StoreError::Truncated // longer than addressable memory: nonsense length
    })?;
    let start = STORE_MAGIC.len() + 1 + r.pos();
    let stream = body
        .get(start..start + stream_len)
        .ok_or(StoreError::Truncated)?;
    if start + stream_len != body.len() {
        // Trailing garbage inside a checksummed body: writer bug, reject.
        return Err(StoreError::Truncated);
    }
    Ok(FrontendBuffer {
        cfg: *cfg,
        bytes: stream.to_vec(),
        events,
        shared_cycles,
        report,
    })
}

fn encode_report(w: &mut VarWriter, r: &RunReport) {
    w.put_varint(r.regfile_desc.len() as u64);
    for b in r.regfile_desc.as_bytes() {
        w.put_u8(*b);
    }
    w.put_varint(u64::from(r.regfile_capacity));
    w.put_varint(r.instructions);
    w.put_varint(r.cycles);
    w.put_varint(r.idle_cycles);
    for c in &r.class_counts {
        w.put_varint(*c);
    }
    w.put_varint(r.context_switches);
    w.put_varint(r.thread_switches);
    w.put_varint(r.calls);
    w.put_varint(r.returns);
    w.put_varint(r.spawns);
    w.put_varint(r.static_instructions as u64);
    for v in regfile_fields(&r.regfile) {
        w.put_varint(v);
    }
    encode_cache(w, &r.dcache);
    w.put_varint(r.occupancy.samples);
    w.put_varint(r.occupancy.sum_valid_regs);
    w.put_varint(r.occupancy.sum_contexts);
    w.put_varint(u64::from(r.occupancy.max_valid_regs));
    w.put_varint(u64::from(r.occupancy.max_contexts));
    w.put_varint(r.thread_instructions.len() as u64);
    for t in &r.thread_instructions {
        w.put_varint(*t);
    }
    match &r.icache {
        None => w.put_u8(0),
        Some(c) => {
            w.put_u8(1);
            encode_cache(w, c);
        }
    }
}

fn encode_cache(w: &mut VarWriter, c: &CacheStats) {
    w.put_varint(c.accesses);
    w.put_varint(c.hits);
    w.put_varint(c.misses);
    w.put_varint(c.writebacks);
}

fn regfile_fields(s: &RegFileStats) -> [u64; 15] {
    [
        s.reads,
        s.writes,
        s.read_hits,
        s.read_misses,
        s.write_hits,
        s.write_misses,
        s.lines_reloaded,
        s.regs_reloaded,
        s.live_regs_reloaded,
        s.regs_spilled,
        s.regs_dribbled,
        s.context_switches,
        s.switch_hits,
        s.spill_reload_cycles,
        s.port_conflict_cycles,
    ]
}

fn decode_report(r: &mut VarReader<'_>) -> Result<RunReport, StoreError> {
    let trunc = |_| StoreError::Truncated;
    let mut rep = RunReport::default();
    let desc_len =
        usize::try_from(r.get_varint().map_err(trunc)?).map_err(|_| StoreError::Truncated)?;
    let mut desc = Vec::with_capacity(desc_len.min(1 << 10));
    for _ in 0..desc_len {
        desc.push(r.get_u8().map_err(trunc)?);
    }
    rep.regfile_desc = String::from_utf8(desc).map_err(|_| StoreError::Truncated)?;
    rep.regfile_capacity = r.get_u32().map_err(trunc)?;
    rep.instructions = r.get_varint().map_err(trunc)?;
    rep.cycles = r.get_varint().map_err(trunc)?;
    rep.idle_cycles = r.get_varint().map_err(trunc)?;
    for c in &mut rep.class_counts {
        *c = r.get_varint().map_err(trunc)?;
    }
    rep.context_switches = r.get_varint().map_err(trunc)?;
    rep.thread_switches = r.get_varint().map_err(trunc)?;
    rep.calls = r.get_varint().map_err(trunc)?;
    rep.returns = r.get_varint().map_err(trunc)?;
    rep.spawns = r.get_varint().map_err(trunc)?;
    rep.static_instructions =
        usize::try_from(r.get_varint().map_err(trunc)?).map_err(|_| StoreError::Truncated)?;
    let mut rf = [0u64; 15];
    for v in &mut rf {
        *v = r.get_varint().map_err(trunc)?;
    }
    rep.regfile = RegFileStats {
        reads: rf[0],
        writes: rf[1],
        read_hits: rf[2],
        read_misses: rf[3],
        write_hits: rf[4],
        write_misses: rf[5],
        lines_reloaded: rf[6],
        regs_reloaded: rf[7],
        live_regs_reloaded: rf[8],
        regs_spilled: rf[9],
        regs_dribbled: rf[10],
        context_switches: rf[11],
        switch_hits: rf[12],
        spill_reload_cycles: rf[13],
        port_conflict_cycles: rf[14],
    };
    rep.dcache = decode_cache(r)?;
    rep.occupancy = OccupancySummary {
        samples: r.get_varint().map_err(trunc)?,
        sum_valid_regs: r.get_varint().map_err(trunc)?,
        sum_contexts: r.get_varint().map_err(trunc)?,
        max_valid_regs: r.get_u32().map_err(trunc)?,
        max_contexts: r.get_u32().map_err(trunc)?,
    };
    let threads =
        usize::try_from(r.get_varint().map_err(trunc)?).map_err(|_| StoreError::Truncated)?;
    let mut ti = Vec::with_capacity(threads.min(1 << 16));
    for _ in 0..threads {
        ti.push(r.get_varint().map_err(trunc)?);
    }
    rep.thread_instructions = ti;
    rep.icache = match r.get_u8().map_err(trunc)? {
        0 => None,
        _ => Some(decode_cache(r)?),
    };
    Ok(rep)
}

fn decode_cache(r: &mut VarReader<'_>) -> Result<CacheStats, StoreError> {
    let trunc = |_| StoreError::Truncated;
    Ok(CacheStats {
        accesses: r.get_varint().map_err(trunc)?,
        hits: r.get_varint().map_err(trunc)?,
        misses: r.get_varint().map_err(trunc)?,
        writebacks: r.get_varint().map_err(trunc)?,
    })
}

/// A directory of persisted stream entries, one `.nsfs` file per
/// fingerprint. Opening is lazy — the directory is created on the first
/// save, so a read-only consumer never writes anything.
#[derive(Clone, Debug)]
pub struct StreamStore {
    dir: PathBuf,
}

impl StreamStore {
    /// A store rooted at `dir` (typically `results/store/`).
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        StreamStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the entry for `fingerprint`.
    pub fn stream_path(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{fingerprint:016x}.nsfs"))
    }

    /// Loads the entry for `fingerprint`, if present and intact.
    /// `Ok(None)` is a plain miss (no file); any present-but-unusable
    /// entry is a typed error so the caller can decide to delete it.
    pub fn load_stream(
        &self,
        fingerprint: u64,
        cfg: &SimConfig,
    ) -> Result<Option<FrontendBuffer>, StoreError> {
        let bytes = match std::fs::read(self.stream_path(fingerprint)) {
            Ok(b) => b,
            Err(e) if e.kind() == ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(StoreError::Io(e)),
        };
        decode_stream(&bytes, fingerprint, cfg).map(Some)
    }

    /// Persists `buf` as the entry for `fingerprint`: written to a
    /// temporary sibling, then atomically renamed, so concurrent
    /// readers and a crash mid-write can only ever observe a complete
    /// entry or none.
    pub fn save_stream(&self, fingerprint: u64, buf: &FrontendBuffer) -> Result<(), StoreError> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self
            .dir
            .join(format!("{fingerprint:016x}.tmp{}", std::process::id()));
        std::fs::write(&tmp, encode_stream(fingerprint, buf))?;
        std::fs::rename(&tmp, self.stream_path(fingerprint)).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp);
        })?;
        Ok(())
    }

    /// Removes the entry for `fingerprint` (used when a loaded entry
    /// fails replay: delete, recapture live, re-save). Absence is fine.
    pub fn remove_stream(&self, fingerprint: u64) {
        let _ = std::fs::remove_file(self.stream_path(fingerprint));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fcache::capture_frontend;
    use nsf_sim::RegFileSpec;
    use proptest::prelude::*;
    use std::sync::OnceLock;

    /// One capture shared across every test/proptest case: capture is
    /// the expensive part and the tests only mutate encoded copies.
    fn captured() -> &'static (Workload, SimConfig, FrontendBuffer, u64) {
        static CAP: OnceLock<(Workload, SimConfig, FrontendBuffer, u64)> = OnceLock::new();
        CAP.get_or_init(|| {
            let w = nsf_workloads::gatesim::build(0);
            let cfg = SimConfig::with_regfile(RegFileSpec::paper_nsf(80));
            let buf = capture_frontend(&w, cfg).unwrap();
            let fp = stream_fingerprint(&w, &cfg).unwrap();
            (w, cfg, buf, fp)
        })
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let (_, cfg, buf, fp) = captured();
        let bytes = encode_stream(*fp, buf);
        let back = decode_stream(&bytes, *fp, cfg).unwrap();
        assert_eq!(back.bytes, buf.bytes, "stream bytes must survive");
        assert_eq!(back.events, buf.events);
        assert_eq!(back.shared_cycles, buf.shared_cycles);
        assert_eq!(back.report, buf.report);
        assert_eq!(encode_stream(*fp, &back), bytes, "re-encode is stable");
    }

    #[test]
    fn save_load_through_a_directory() {
        let (_, cfg, buf, fp) = captured();
        let dir = std::env::temp_dir().join(format!("nsfs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StreamStore::open(&dir);
        assert!(store.load_stream(*fp, cfg).unwrap().is_none(), "cold miss");
        store.save_stream(*fp, buf).unwrap();
        let back = store.load_stream(*fp, cfg).unwrap().expect("warm hit");
        assert_eq!(back.bytes, buf.bytes);
        assert_eq!(back.report, buf.report);
        store.remove_stream(*fp);
        assert!(store.load_stream(*fp, cfg).unwrap().is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_separates_frontends_not_engines() {
        let (w, cfg, _, fp) = captured();
        // A different register file is frontend-equal: same stream key.
        let other_engine = SimConfig {
            regfile: RegFileSpec::paper_segmented(4, 32),
            ..*cfg
        };
        assert_eq!(stream_fingerprint(w, &other_engine), Some(*fp));
        // Any frontend_eq field change must change the key.
        let other_frontend = SimConfig {
            sample_interval: cfg.sample_interval + 1,
            ..*cfg
        };
        assert_ne!(stream_fingerprint(w, &other_frontend), Some(*fp));
        // And so must workload content.
        let w2 = nsf_workloads::gatesim::build(1);
        assert_ne!(stream_fingerprint(&w2, cfg), Some(*fp));
    }

    #[test]
    fn foreign_magic_and_version_are_typed() {
        let (_, cfg, buf, fp) = captured();
        let good = encode_stream(*fp, buf);
        let mut magic = good.clone();
        magic[0] = b'X';
        assert!(matches!(
            decode_stream(&magic, *fp, cfg),
            Err(StoreError::BadMagic(_))
        ));
        let mut version = good.clone();
        version[4] = STORE_VERSION + 1;
        assert!(matches!(
            decode_stream(&version, *fp, cfg),
            Err(StoreError::UnsupportedVersion(v)) if v == STORE_VERSION + 1
        ));
        assert!(matches!(
            decode_stream(&good, fp.wrapping_add(1), cfg),
            Err(StoreError::FingerprintMismatch { .. })
        ));
        assert!(validate_stream_bytes(&good, *fp).is_ok());
        assert!(matches!(
            validate_stream_bytes(&good, fp.wrapping_add(1)),
            Err(StoreError::FingerprintMismatch { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Torn-tail truncation at any length is a typed reject.
        #[test]
        fn truncation_is_always_typed(cut in 0usize..2048) {
            let (_, cfg, buf, fp) = captured();
            let bytes = encode_stream(*fp, buf);
            let cut = cut.min(bytes.len().saturating_sub(1));
            let torn = &bytes[..cut];
            let err = decode_stream(torn, *fp, cfg).unwrap_err();
            prop_assert!(matches!(
                err,
                StoreError::Truncated
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::BadMagic(_)
                    | StoreError::UnsupportedVersion(_)
            ));
            prop_assert!(validate_stream_bytes(torn, *fp).is_err());
        }

        /// A single flipped bit anywhere is caught — by the checksum,
        /// or (if it lands in the trailer itself) as a mismatch against
        /// the intact body. Never a silent success with altered data.
        #[test]
        fn bit_flips_are_always_caught(idx in 0usize..1 << 20, bit in 0u8..8) {
            let (_, cfg, buf, fp) = captured();
            let mut bytes = encode_stream(*fp, buf);
            let idx = idx % bytes.len();
            bytes[idx] ^= 1 << bit;
            let err = decode_stream(&bytes, *fp, cfg).unwrap_err();
            if idx > STORE_MAGIC.len() {
                // Magic/version damage is classified before the
                // checksum runs; everything else must be a checksum
                // failure (the fingerprint field is inside the body).
                prop_assert!(
                    matches!(err, StoreError::ChecksumMismatch { .. }),
                    "byte {idx} bit {bit}: {err}"
                );
            }
        }
    }
}
