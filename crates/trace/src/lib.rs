//! # nsf-trace — register-event capture, compact traces, and replay
//!
//! The paper's evaluation is a function of the register-file *operation
//! stream*: every access by `<Cid:offset>`, every context switch, every
//! deallocation hint (plus the program's data-cache traffic that spills
//! contend with — paper Fig. 4). This crate captures that stream from a
//! live run, stores it in a compact versioned binary format, and
//! replays it into any register file organization — so the design space
//! (Figs. 11–13) can be swept without re-executing compiler, runtime
//! and scheduler for every configuration.
//!
//! Three layers:
//!
//! - **Capture** ([`TraceRecorder`], [`capture`]): an
//!   [`nsf_core::EventSink`] fed by the `RecordingFile` wrapper and the
//!   simulator; any engine under any workload records without the
//!   workload knowing.
//! - **Format** ([`Trace`], [`TraceWriter`], [`TraceReader`]): the
//!   `.nsftrace` encoding — magic + version header, varint fields,
//!   delta-encoded cycles, event-count + checksum trailer; corrupt
//!   input yields typed [`TraceError`]s, never panics.
//! - **Replay** ([`replay`], [`diff`]): drives a stored stream into a
//!   fresh engine behind the simulator's own Ctable-over-data-cache
//!   backing store. Same-engine replay reproduces the live run's
//!   [`nsf_core::RegFileStats`] bit for bit (pinned by the golden corpus
//!   in `tests/golden/` and a property test across all organizations);
//!   cross-engine replay and [`diff`] answer "what would this stream
//!   have cost on that file?".
//!
//! The `trace_tool` binary in `nsf-bench` fronts all of this on the
//! command line (`record`, `info`, `replay`, `diff`).

pub mod event;
pub mod fcache;
pub mod format;
pub mod recorder;
pub mod replay;
pub mod store;
/// The engine-spec grammar, re-exported from its shared home in
/// `nsf-sim` (`nsf_sim::spec`) — trace headers store these strings, so
/// the historical `nsf_trace::spec` path keeps working.
pub use nsf_sim::spec;

pub use event::{RegEvent, TimedEvent};
pub use fcache::{capture_frontend, replay_frontend, FrontendBuffer};
pub use format::{
    Trace, TraceError, TraceMeta, TraceReader, TraceWriter, VarReader, VarWriter, FORMAT_VERSION,
    MAGIC,
};
pub use recorder::TraceRecorder;
pub use replay::{diff, replay, replay_events, DiffReport, Divergence, ReplayReport, StatDelta};
pub use spec::{default_engine_spec, parse_engine, SpecError};
pub use store::{
    decode_stream, encode_stream, stream_fingerprint, validate_stream_bytes, StoreError,
    StreamStore, STORE_MAGIC, STORE_VERSION,
};

use nsf_sim::{RunReport, SimConfig};
use nsf_workloads::{Workload, WorkloadError};

/// Runs `workload` under `cfg` with recording on, returning the trace
/// and the live run's report.
///
/// `engine_spec` and `scale` are stored in the trace header (the spec
/// should describe `cfg.regfile`, e.g. from [`parse_engine`]'s input).
/// The report is identical to an unrecorded [`nsf_workloads::run`] —
/// recording is observational — so `report.regfile` is the ground truth
/// a same-engine [`replay`] must reproduce exactly.
pub fn capture(
    workload: &Workload,
    cfg: SimConfig,
    engine_spec: &str,
    scale: u32,
) -> Result<(Trace, RunReport), WorkloadError> {
    let rec = TraceRecorder::shared();
    let report = nsf_workloads::run_recorded(workload, cfg, rec.clone())?;
    let trace = Trace {
        meta: TraceMeta {
            workload: workload.name.to_string(),
            engine: engine_spec.to_string(),
            scale,
            instructions: report.instructions,
            cycles: report.cycles,
            context_switches: report.context_switches,
        },
        events: rec.borrow_mut().take_events(),
    };
    Ok((trace, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_sim::RegFileSpec;

    #[test]
    fn capture_replay_roundtrip_matches_live_stats() {
        // The end-to-end contract on one real benchmark: capture a run,
        // serialize, deserialize, replay through the same organization,
        // and get the live run's statistics bit for bit.
        let workload = nsf_workloads::gatesim::build(0);
        let spec = default_engine_spec(workload.parallel);
        let cfg = SimConfig::with_regfile(parse_engine(spec).unwrap());
        let (trace, report) = capture(&workload, cfg, spec, 0).unwrap();
        assert!(!trace.events.is_empty());
        assert_eq!(trace.meta.workload, "GateSim");
        assert_eq!(trace.meta.instructions, report.instructions);

        let back = Trace::from_bytes(&trace.to_bytes()).unwrap();
        assert_eq!(back, trace);
        let replayed = replay(&back, &cfg).unwrap();
        assert_eq!(replayed.stats, report.regfile, "replay must be exact");
    }

    #[test]
    fn recording_does_not_perturb_the_run() {
        let workload = nsf_workloads::gatesim::build(0);
        let cfg = SimConfig::with_regfile(RegFileSpec::paper_nsf(80));
        let live = nsf_workloads::run(&workload, cfg).unwrap();
        let (_, recorded) = capture(&workload, cfg, "nsf:80", 0).unwrap();
        assert_eq!(recorded.instructions, live.instructions);
        assert_eq!(recorded.cycles, live.cycles);
        assert_eq!(recorded.regfile, live.regfile);
    }
}
