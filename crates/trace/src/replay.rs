//! Trace replay: feed a recorded operation stream into any register
//! file organization, reproducing the statistics a live run under that
//! organization would report — without rebuilding or re-executing the
//! workload.
//!
//! The replay driver mirrors the simulator's engine-facing environment
//! exactly: a fresh [`MemSystem`] provides the Ctable and data cache,
//! spills and reloads travel through [`CtableBacking`] (charging real
//! cache latencies), and the trace's program memory events keep the
//! cache state identical to the live run's. Context save areas use the
//! simulator's deterministic layout (`backing_base + cid * 64`), mapped
//! lazily on first touch and unmapped on `FreeContext` — the same
//! lifecycle `Machine::release_context` performs.
//!
//! Replaying a trace through the *same* organization that recorded it
//! yields bit-identical [`RegFileStats`] (the golden and property tests
//! pin this). Replaying through a *different* organization answers the
//! design-space question — "what would this op stream have cost on that
//! file?" — and [`diff`] reports where and how the two disagree.

use crate::event::{RegEvent, TimedEvent};
use crate::format::{Trace, TraceError};
use nsf_core::{Access, EngineDispatch, RegFileStats, RegisterFile};
use nsf_mem::{Addr, MemSystem};
use nsf_sim::{BackingMap, CtableBacking, SimConfig, BACKING_STRIDE_WORDS};

/// Outcome of replaying one trace through one organization.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// The organization's self-description.
    pub regfile_desc: String,
    /// Statistics the organization accumulated — for a same-engine
    /// replay, bit-identical to the live run's.
    pub stats: RegFileStats,
    /// Total events replayed.
    pub events: u64,
    /// Of those, register-file operations.
    pub reg_ops: u64,
    /// Of those, program memory accesses (cache conditioning).
    pub mem_ops: u64,
}

/// Per-operation outcome, compared during [`diff`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Outcome {
    /// A read/write access: `(value, stall_cycles, missed)`.
    Access(u32, u32, bool),
    /// A context switch: stall cycles charged.
    Switch(u32),
    /// A free or memory event (no observable result).
    Unit,
}

impl Outcome {
    fn from_access(a: Access) -> Self {
        Outcome::Access(a.value, a.stall_cycles, a.missed)
    }

    fn describe(&self) -> String {
        match *self {
            Outcome::Access(value, stalls, missed) => format!(
                "{} (value {value:#x}, {stalls} stall cycles)",
                if missed { "miss" } else { "hit" }
            ),
            Outcome::Switch(stalls) => format!("switch costing {stalls} stall cycles"),
            Outcome::Unit => "no observable result".into(),
        }
    }
}

/// One organization mid-replay: the engine plus its memory environment.
struct Lane {
    regfile: EngineDispatch,
    mem: MemSystem,
    map: BackingMap,
    backing_base: Addr,
}

impl Lane {
    fn new(cfg: &SimConfig) -> Self {
        Lane {
            regfile: cfg.regfile.build(),
            mem: MemSystem::new(cfg.mem),
            map: BackingMap::new(),
            backing_base: cfg.backing_base,
        }
    }

    /// Applies one event, returning its outcome (or the engine's error).
    fn apply(&mut self, index: u64, event: &RegEvent) -> Result<Outcome, TraceError> {
        // Install the context's save-area translation on first touch —
        // the simulator's deterministic layout, so spill addresses (and
        // therefore cache behavior) match the live run.
        if let Some(cid) = event.cid() {
            if self.mem.ctable().lookup(cid).is_err() {
                self.mem.ctable_mut().map(
                    cid,
                    self.backing_base + Addr::from(cid) * BACKING_STRIDE_WORDS,
                );
            }
        }
        let fail = |source| TraceError::Replay { index, source };
        let mut store = CtableBacking {
            mem: &mut self.mem,
            map: &mut self.map,
        };
        Ok(match *event {
            RegEvent::Read { addr } => {
                Outcome::from_access(self.regfile.read(addr, &mut store).map_err(fail)?)
            }
            RegEvent::Write { addr, value } => {
                Outcome::from_access(self.regfile.write(addr, value, &mut store).map_err(fail)?)
            }
            RegEvent::SwitchTo { cid } => {
                Outcome::Switch(self.regfile.switch_to(cid, &mut store).map_err(fail)?)
            }
            RegEvent::CallPush { cid } => {
                Outcome::Switch(self.regfile.call_push(cid, &mut store).map_err(fail)?)
            }
            RegEvent::ThreadSwitch { cid } => {
                Outcome::Switch(self.regfile.thread_switch(cid, &mut store).map_err(fail)?)
            }
            RegEvent::FreeContext { cid } => {
                self.regfile.free_context(cid, &mut store);
                self.mem.ctable_mut().unmap(cid); // mirror Machine::release_context
                Outcome::Unit
            }
            RegEvent::FreeReg { addr } => {
                self.regfile.free_reg(addr, &mut store);
                Outcome::Unit
            }
            RegEvent::MemRead { addr } => {
                self.mem.load(addr);
                Outcome::Unit
            }
            RegEvent::MemWrite { addr } => {
                // The written value was not recorded: nothing in a replay
                // ever observes program-memory *contents* (register state
                // flows through the engine and its save areas, which live
                // above `backing_base`, disjoint from program addresses).
                // Only the cache-state transition matters, so store a
                // placeholder.
                self.mem.store(addr, 0);
                Outcome::Unit
            }
        })
    }
}

/// Replays a decoded trace through the organization in `cfg`.
pub fn replay(trace: &Trace, cfg: &SimConfig) -> Result<ReplayReport, TraceError> {
    replay_events(&trace.events, cfg)
}

/// Replays a raw event stream through the organization in `cfg`
/// (`cfg.regfile`, `cfg.mem` and `cfg.backing_base` are used; the rest
/// of the simulator configuration does not affect engine-facing
/// behavior).
pub fn replay_events(events: &[TimedEvent], cfg: &SimConfig) -> Result<ReplayReport, TraceError> {
    let mut lane = Lane::new(cfg);
    let mut reg_ops = 0u64;
    let mut mem_ops = 0u64;
    for (i, te) in events.iter().enumerate() {
        lane.apply(i as u64, &te.event)?;
        if te.event.is_mem() {
            mem_ops += 1;
        } else {
            reg_ops += 1;
        }
    }
    Ok(ReplayReport {
        regfile_desc: lane.regfile.describe(),
        stats: *lane.regfile.stats(),
        events: events.len() as u64,
        reg_ops,
        mem_ops,
    })
}

/// The first operation on which two organizations disagreed.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Index of the operation in the trace.
    pub index: u64,
    /// The operation itself.
    pub event: TimedEvent,
    /// Human-readable "A did X, B did Y".
    pub detail: String,
}

/// One statistic that differed after a full dual replay.
#[derive(Clone, Copy, Debug)]
pub struct StatDelta {
    /// Field name in [`RegFileStats`].
    pub name: &'static str,
    /// Engine A's value.
    pub a: u64,
    /// Engine B's value.
    pub b: u64,
}

impl StatDelta {
    /// `b - a` as a signed difference.
    pub fn delta(&self) -> i64 {
        self.b as i64 - self.a as i64
    }
}

/// Outcome of replaying one trace through two organizations in lockstep.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Engine A's replay result.
    pub a: ReplayReport,
    /// Engine B's replay result.
    pub b: ReplayReport,
    /// First per-operation disagreement, if any (engines can diverge
    /// per-op yet still agree on aggregate statistics, and vice versa).
    pub first_divergence: Option<Divergence>,
    /// Statistics that differ after the full replay (only nonzero
    /// deltas; empty when the engines agree exactly).
    pub deltas: Vec<StatDelta>,
}

impl DiffReport {
    /// `true` when the engines agreed on every operation and every
    /// statistic.
    pub fn identical(&self) -> bool {
        self.first_divergence.is_none() && self.deltas.is_empty()
    }
}

/// Replays `trace` through two organizations in lockstep, reporting the
/// first operation whose observable outcome (value, stall cycles,
/// hit/miss) differs, plus every aggregate statistic that ends up
/// different.
pub fn diff(trace: &Trace, cfg_a: &SimConfig, cfg_b: &SimConfig) -> Result<DiffReport, TraceError> {
    let mut a = Lane::new(cfg_a);
    let mut b = Lane::new(cfg_b);
    let mut first_divergence = None;
    let mut reg_ops = 0u64;
    let mut mem_ops = 0u64;
    for (i, te) in trace.events.iter().enumerate() {
        let oa = a.apply(i as u64, &te.event)?;
        let ob = b.apply(i as u64, &te.event)?;
        if te.event.is_mem() {
            mem_ops += 1;
        } else {
            reg_ops += 1;
        }
        if first_divergence.is_none() && oa != ob {
            first_divergence = Some(Divergence {
                index: i as u64,
                event: *te,
                detail: format!("A: {}; B: {}", oa.describe(), ob.describe()),
            });
        }
    }
    let sa = *a.regfile.stats();
    let sb = *b.regfile.stats();
    let report = |lane: &Lane, stats| ReplayReport {
        regfile_desc: lane.regfile.describe(),
        stats,
        events: trace.events.len() as u64,
        reg_ops,
        mem_ops,
    };
    Ok(DiffReport {
        a: report(&a, sa),
        b: report(&b, sb),
        first_divergence,
        deltas: stat_deltas(&sa, &sb),
    })
}

/// All [`RegFileStats`] fields whose values differ between `a` and `b`.
pub fn stat_deltas(a: &RegFileStats, b: &RegFileStats) -> Vec<StatDelta> {
    let fields: [(&'static str, u64, u64); 14] = [
        ("reads", a.reads, b.reads),
        ("writes", a.writes, b.writes),
        ("read_hits", a.read_hits, b.read_hits),
        ("read_misses", a.read_misses, b.read_misses),
        ("write_hits", a.write_hits, b.write_hits),
        ("write_misses", a.write_misses, b.write_misses),
        ("lines_reloaded", a.lines_reloaded, b.lines_reloaded),
        ("regs_reloaded", a.regs_reloaded, b.regs_reloaded),
        (
            "live_regs_reloaded",
            a.live_regs_reloaded,
            b.live_regs_reloaded,
        ),
        ("regs_spilled", a.regs_spilled, b.regs_spilled),
        ("regs_dribbled", a.regs_dribbled, b.regs_dribbled),
        ("context_switches", a.context_switches, b.context_switches),
        ("switch_hits", a.switch_hits, b.switch_hits),
        (
            "spill_reload_cycles",
            a.spill_reload_cycles,
            b.spill_reload_cycles,
        ),
    ];
    fields
        .into_iter()
        .filter(|&(_, va, vb)| va != vb)
        .map(|(name, a, b)| StatDelta { name, a, b })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::TraceMeta;
    use nsf_core::RegAddr;
    use nsf_sim::RegFileSpec;

    /// A tiny hand-written stream: two contexts ping-ponging with more
    /// live registers than a small NSF can hold, forcing spill traffic.
    fn tiny_trace() -> Trace {
        let mut events = Vec::new();
        let mut push = |event| {
            events.push(TimedEvent {
                cycle: events.len() as u64,
                event,
            })
        };
        push(RegEvent::ThreadSwitch { cid: 0 });
        for off in 0..6 {
            push(RegEvent::Write {
                addr: RegAddr::new(0, off),
                value: u32::from(off) + 100,
            });
        }
        push(RegEvent::CallPush { cid: 1 });
        for off in 0..6 {
            push(RegEvent::Write {
                addr: RegAddr::new(1, off),
                value: u32::from(off) + 200,
            });
        }
        push(RegEvent::MemRead { addr: 0x0010_0000 });
        push(RegEvent::SwitchTo { cid: 0 });
        for off in 0..6 {
            push(RegEvent::Read {
                addr: RegAddr::new(0, off),
            });
        }
        push(RegEvent::FreeContext { cid: 1 });
        push(RegEvent::FreeReg {
            addr: RegAddr::new(0, 5),
        });
        Trace {
            meta: TraceMeta::default(),
            events,
        }
    }

    fn cfg(spec: RegFileSpec) -> SimConfig {
        SimConfig::with_regfile(spec)
    }

    #[test]
    fn replay_is_deterministic() {
        let t = tiny_trace();
        let c = cfg(RegFileSpec::paper_nsf(8));
        let r1 = replay(&t, &c).unwrap();
        let r2 = replay(&t, &c).unwrap();
        assert_eq!(r1.stats, r2.stats);
        assert_eq!(r1.events, t.events.len() as u64);
        assert_eq!(r1.reg_ops + r1.mem_ops, r1.events);
        assert_eq!(r1.mem_ops, 1);
        assert!(r1.stats.regs_spilled > 0, "8-reg NSF must spill 12 lives");
    }

    #[test]
    fn replay_counts_every_operation() {
        let t = tiny_trace();
        let r = replay(&t, &cfg(RegFileSpec::paper_nsf(128))).unwrap();
        assert_eq!(r.stats.reads, 6);
        assert_eq!(r.stats.writes, 12);
        assert_eq!(r.stats.context_switches, 3);
        assert!(r.regfile_desc.contains("NSF"));
    }

    #[test]
    fn diff_same_engine_is_identical() {
        let t = tiny_trace();
        let c = cfg(RegFileSpec::paper_nsf(16));
        let d = diff(&t, &c, &c).unwrap();
        assert!(d.identical(), "{:?}", d.first_divergence);
        assert_eq!(d.a.stats, d.b.stats);
    }

    #[test]
    fn diff_reports_first_divergence_and_deltas() {
        let t = tiny_trace();
        let big = cfg(RegFileSpec::paper_nsf(128));
        let small = cfg(RegFileSpec::paper_nsf(8));
        let d = diff(&t, &big, &small).unwrap();
        assert!(!d.identical());
        let div = d.first_divergence.expect("8 regs must miss where 128 hit");
        assert!(div.detail.contains("A: "), "{}", div.detail);
        assert!(d.deltas.iter().any(|s| s.name == "regs_spilled"));
        let spilled = d.deltas.iter().find(|s| s.name == "regs_spilled").unwrap();
        assert!(spilled.delta() > 0, "small file spills more");
    }

    #[test]
    fn replay_error_is_typed_with_index() {
        // Reading a register that was never written: the conventional
        // file treats unknown offsets within range as resident zero, but
        // the NSF faults on a read of a never-allocated register.
        let t = Trace {
            meta: TraceMeta::default(),
            events: vec![
                TimedEvent {
                    cycle: 0,
                    event: RegEvent::ThreadSwitch { cid: 0 },
                },
                TimedEvent {
                    cycle: 1,
                    event: RegEvent::Read {
                        addr: RegAddr::new(0, 3),
                    },
                },
            ],
        };
        let err = replay(&t, &cfg(RegFileSpec::paper_nsf(16))).unwrap_err();
        match err {
            TraceError::Replay { index, .. } => assert_eq!(index, 1),
            other => panic!("expected Replay error, got {other}"),
        }
    }

    #[test]
    fn stat_deltas_empty_for_equal_stats() {
        let s = RegFileStats::default();
        assert!(stat_deltas(&s, &s).is_empty());
        let mut t = s;
        t.read_misses = 4;
        let d = stat_deltas(&s, &t);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].name, "read_misses");
        assert_eq!(d[0].delta(), 4);
    }
}
