//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The workspace pins its benches to the real criterion API
//! (`benchmark_group`, `bench_function`, `iter`, `iter_batched`,
//! `BatchSize`, `criterion_group!`/`criterion_main!`), but the build
//! environment has no network access to crates.io. This shim implements
//! exactly that subset: each benchmark is warmed up, then timed over a
//! fixed wall-clock window, and the median per-iteration time is printed.
//! There is no statistical analysis, outlier detection, or HTML report —
//! the numbers are indicative, not publication-grade.

use std::time::{Duration, Instant};

/// How batched setup output is passed to the routine. The shim accepts
/// every variant criterion defines but treats them identically: setup is
/// re-run per timed batch and excluded from the measurement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input (the only variant the workspace uses).
    SmallInput,
    /// Larger input; same handling in the shim.
    LargeInput,
    /// Per-batch input; same handling in the shim.
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    /// In `--test` mode each routine runs exactly once, untimed — a
    /// smoke-execution of every bench body (mirrors `cargo bench -- --test`
    /// on real criterion; CI uses it to keep the benches compiling *and*
    /// running without paying for measurement).
    test_mode: bool,
}

const SAMPLES: usize = 11;
const TARGET_SAMPLE: Duration = Duration::from_millis(20);

/// Whether the bench binary was invoked with `--test`.
fn test_mode_requested() -> bool {
    std::env::args().any(|a| a == "--test")
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            test_mode: false,
        }
    }

    /// Times `routine` over repeated calls; the result is kept live via
    /// a volatile read so the optimizer cannot discard the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Calibrate: how many iterations fill one sample window?
        let start = Instant::now();
        let mut calib = 0u64;
        while start.elapsed() < TARGET_SAMPLE {
            std::hint::black_box(routine());
            calib += 1;
        }
        self.iters_per_sample = calib.max(1);
        self.samples.clear();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            std::hint::black_box(routine(input));
            return;
        }
        self.iters_per_sample = 1;
        self.samples.clear();
        // One warm-up batch, then timed batches.
        let input = setup();
        std::hint::black_box(routine(input));
        for _ in 0..SAMPLES {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn median_ns_per_iter(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ns[ns.len() / 2]
    }
}

fn report(name: &str, b: &Bencher) {
    let ns = b.median_ns_per_iter();
    let (val, unit) = if ns >= 1e9 {
        (ns / 1e9, "s")
    } else if ns >= 1e6 {
        (ns / 1e6, "ms")
    } else if ns >= 1e3 {
        (ns / 1e3, "µs")
    } else {
        (ns, "ns")
    };
    println!(
        "{name:<44} median {val:>9.3} {unit}/iter  ({} samples)",
        SAMPLES
    );
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            test_mode: test_mode_requested(),
        }
    }
}

impl Criterion {
    fn run_one(&self, name: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher::new();
        b.test_mode = self.test_mode;
        f(&mut b);
        if self.test_mode {
            println!("Testing {name}: ok");
        } else {
            report(name, &b);
        }
    }

    /// Runs and reports one stand-alone benchmark.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        self.run_one(&name, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== group: {name} ==");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }
}

/// Group handle mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        self._parent.run_one(&full, &mut f);
        self
    }

    /// Ends the group (no-op beyond a blank line).
    pub fn finish(self) {
        println!();
    }
}

/// Prevents the optimizer from deleting a value or the work producing it.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group: `criterion_group!(benches, f1, f2);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new();
        b.iter(|| std::hint::black_box(3u64).wrapping_mul(7));
        assert_eq!(b.samples.len(), SAMPLES);
        assert!(b.median_ns_per_iter() >= 0.0);
    }

    #[test]
    fn test_mode_runs_routine_once_untimed() {
        let mut b = Bencher::new();
        b.test_mode = true;
        let mut runs = 0u32;
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert!(b.samples.is_empty());
        let mut setups = 0u32;
        b.iter_batched(|| setups += 1, |()| (), BatchSize::SmallInput);
        assert_eq!(setups, 1);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0u32;
        let mut b = Bencher::new();
        b.iter_batched(
            || {
                setups += 1;
                vec![1u8, 2, 3]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        // one warm-up + SAMPLES timed batches
        assert_eq!(setups as usize, SAMPLES + 1);
        assert_eq!(b.samples.len(), SAMPLES);
    }
}
