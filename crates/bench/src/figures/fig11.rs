//! Figure 11 — average contexts resident in various sizes of segmented
//! and NSF register files.

use super::{rule, size_sweep_grid};
use crate::runner::{Cursor, Sweep};
use crate::SEQ_CTX_REGS;
use nsf_sim::RunReport;
use std::fmt::Write;

/// GateSim and Gamteb under both file kinds at 2–10 frames.
pub fn grid(scale: u32) -> Sweep {
    size_sweep_grid(scale)
}

/// Resident contexts per frame count, sequential and parallel.
pub fn render(scale: u32, _sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 11: Average resident contexts vs register file size, scale {scale}"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "Frames", "Seq regs", "Seq NSF", "Seq Segment", "Par NSF", "Par Segment"
    )
    .unwrap();
    rule(&mut out, 74);
    let mut c = Cursor::new(reports);
    for frames in 2..=10u32 {
        let [seq_nsf, seq_seg, par_nsf, par_seg] = [c.next(), c.next(), c.next(), c.next()];
        writeln!(
            out,
            "{:<8} {:>10} {:>12.2} {:>12.2} {:>14.2} {:>14.2}",
            frames,
            frames * u32::from(SEQ_CTX_REGS),
            seq_nsf.occupancy.avg_contexts(),
            seq_seg.occupancy.avg_contexts(),
            par_nsf.occupancy.avg_contexts(),
            par_seg.occupancy.avg_contexts(),
        )
        .unwrap();
    }
    c.finish();
    rule(&mut out, 74);
    if !quiet {
        out.push_str("Paper: N-frame segmented files average ~0.7N resident contexts; the NSF\n");
        out.push_str("averages ~0.8N on parallel code and more than 2N on sequential code.\n");
    }
    out
}
