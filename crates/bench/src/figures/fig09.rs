//! Figure 9 — percentage of registers containing active data.

use super::rule;
use crate::runner::{Cursor, Sweep};
use crate::{
    nsf_config, pct, segmented_config, PAR_CTX_REGS, PAR_FILE_REGS, SEQ_CTX_REGS, SEQ_FILE_REGS,
};
use nsf_sim::RunReport;
use std::fmt::Write;

/// Per paper benchmark: one NSF run and one 4-frame segmented run.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    for w in nsf_workloads::paper_suite(scale) {
        let (regs, frames, frame_regs) = if w.parallel {
            (PAR_FILE_REGS, 4, PAR_CTX_REGS)
        } else {
            (SEQ_FILE_REGS, 4, SEQ_CTX_REGS)
        };
        let idx = s.workload(w);
        s.point(idx, nsf_config(regs));
        s.point(idx, segmented_config(frames, frame_regs));
    }
    s
}

/// NSF max/avg utilization vs segmented avg, per benchmark.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let mut out = String::new();
    writeln!(out, "Figure 9: Active registers (% of file), scale {scale}").unwrap();
    writeln!(
        out,
        "{:<10} {:>9} {:>9} {:>12}",
        "App", "NSF max", "NSF avg", "Segment avg"
    )
    .unwrap();
    rule(&mut out, 44);
    let mut c = Cursor::new(reports);
    for w in &sweep.workloads {
        let nsf = c.next();
        let seg = c.next();
        writeln!(
            out,
            "{:<10} {:>9} {:>9} {:>12}",
            w.name,
            pct(nsf.max_utilization()),
            pct(nsf.utilization()),
            pct(seg.utilization()),
        )
        .unwrap();
    }
    c.finish();
    rule(&mut out, 44);
    if !quiet {
        out.push_str("Paper: NSF holds active data in 70-80% of its registers — 2-3x the\n");
        out.push_str("segmented file on sequential programs, 1.3-1.5x on parallel ones.\n");
    }
    out
}
