//! Mechanism exposition: call-chain depth → resident contexts. The
//! synthetic recursion sweeps depth at fixed shape, so the grid is the
//! same at every `--scale` (the seed binary ignored scale too).

use super::rule;
use crate::runner::{Cursor, Sweep};
use crate::{nsf_config, pct, segmented_config, SEQ_CTX_REGS, SEQ_FILE_REGS};
use nsf_sim::RunReport;
use nsf_workloads::synth::{sequential, SeqParams};
use std::fmt::Write;

/// Call-chain depths swept.
pub const DEPTHS: [u32; 7] = [2, 4, 6, 8, 12, 16, 24];

/// One synthetic recursion per depth, under NSF and segmented files.
pub fn grid(_scale: u32) -> Sweep {
    let mut s = Sweep::new();
    for depth in DEPTHS {
        let idx = s.workload(sequential(SeqParams {
            depth,
            fanout: 1,
            locals: 6,
        }));
        s.point(idx, nsf_config(SEQ_FILE_REGS));
        s.point(idx, segmented_config(4, SEQ_CTX_REGS));
    }
    s
}

/// Resident contexts and reload traffic per depth.
pub fn render(_scale: u32, _sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Call-chain depth sweep (synthetic recursion, 6 locals/activation)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>12} {:>14} {:>12} {:>14}",
        "Depth", "NSF contexts", "Seg contexts", "NSF reloads", "Seg reloads"
    )
    .unwrap();
    rule(&mut out, 64);
    let mut c = Cursor::new(reports);
    for depth in DEPTHS {
        let n = c.next();
        let s = c.next();
        writeln!(
            out,
            "{:<8} {:>12.2} {:>14.2} {:>12} {:>14}",
            depth,
            n.occupancy.avg_contexts(),
            s.occupancy.avg_contexts(),
            pct(n.reloads_per_instr()),
            pct(s.reloads_per_instr()),
        )
        .unwrap();
    }
    c.finish();
    rule(&mut out, 64);
    if !quiet {
        out.push_str("The segmented file cannot hold more than its 4 frames no matter the\n");
        out.push_str("chain; the NSF keeps absorbing activations until its 80 registers\n");
        out.push_str("fill, and even then demand-reloads only what returns actually touch.\n");
    }
    out
}
