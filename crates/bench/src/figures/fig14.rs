//! Figure 14 — register spill and reload overhead as a percentage of
//! program execution time, for NSF / segmented-HW / segmented-SW files.

use super::rule;
use crate::runner::{Cursor, Sweep};
use crate::{
    aggregate, nsf_config, pct, segmented_config, segmented_software_config, PAR_CTX_REGS,
    SEQ_CTX_REGS,
};
use nsf_sim::RunReport;
use std::fmt::Write;

/// Sequential frames: the nearest multiple of the 20-register context
/// that reaches the paper's 128-register file (6 × 20 = 120).
const SEQ_FRAMES: u32 = 6;

/// Both suites under NSF, hardware-assisted segmented, and software-trap
/// segmented files.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    let seq = s.suite(nsf_workloads::sequential_suite(scale));
    let par = s.suite(nsf_workloads::parallel_suite(scale));
    for &w in &seq {
        s.point(w, nsf_config(SEQ_FRAMES * u32::from(SEQ_CTX_REGS)));
    }
    for &w in &seq {
        s.point(w, segmented_config(SEQ_FRAMES, SEQ_CTX_REGS));
    }
    for &w in &seq {
        s.point(w, segmented_software_config(SEQ_FRAMES, SEQ_CTX_REGS));
    }
    for &w in &par {
        s.point(w, nsf_config(128));
    }
    for &w in &par {
        s.point(w, segmented_config(4, PAR_CTX_REGS));
    }
    for &w in &par {
        s.point(w, segmented_software_config(4, PAR_CTX_REGS));
    }
    s
}

/// Suite-aggregated overhead, one row per suite.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let seq_len = sweep.workloads.iter().filter(|w| !w.parallel).count();
    let par_len = sweep.workloads.len() - seq_len;
    let mut out = String::new();
    writeln!(
        out,
        "Figure 14: Spill/reload overhead as % of execution time, scale {scale}"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>14} {:>14}",
        "Suite", "NSF", "Segment (HW)", "Segment (SW)"
    )
    .unwrap();
    rule(&mut out, 52);
    let mut c = Cursor::new(reports);
    for (name, len) in [("Serial", seq_len), ("Parallel", par_len)] {
        let nsf = aggregate(c.take(len));
        let hw = aggregate(c.take(len));
        let sw = aggregate(c.take(len));
        writeln!(
            out,
            "{:<10} {:>10} {:>14} {:>14}",
            name,
            pct(nsf.spill_overhead()),
            pct(hw.spill_overhead()),
            pct(sw.spill_overhead()),
        )
        .unwrap();
    }
    c.finish();
    rule(&mut out, 52);
    if !quiet {
        out.push_str("Paper: serial 0.01% / 8.47% / 15.54%; parallel 12.12% / 26.67% / 38.12%.\n");
        out.push_str("The NSF eliminates sequential spill overhead entirely and roughly\n");
        out.push_str("halves it for parallel programs.\n");
    }
    out
}
