//! The sweep figures (11, 12, 13 and the depth sweep) as CSV rows for
//! replotting. The binary writes them under `results/`; the pure
//! [`csvs`] function is what tests compare across thread counts.

use super::depth_sweep::DEPTHS;
use super::{line_size_points, size_sweep_points, PAR_WIDTHS, RELOAD_POLICIES, SEQ_WIDTHS};
use crate::runner::{Cursor, Sweep};
use crate::{aggregate, nsf_config, segmented_config, SEQ_CTX_REGS};
use nsf_sim::RunReport;
use nsf_workloads::synth::{sequential, SeqParams};

/// One CSV file: name under `results/`, header line, data rows.
pub struct Csv {
    /// File name (e.g. `fig13_line_size.csv`).
    pub name: &'static str,
    /// Comma-separated header line.
    pub header: &'static str,
    /// Formatted data rows.
    pub rows: Vec<String>,
}

/// Every simulation behind the three CSVs, with each benchmark built
/// once (GateSim and Gamteb serve both the size sweep and Figure 13).
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    let seq = s.suite(nsf_workloads::sequential_suite(scale));
    let par = s.suite(nsf_workloads::parallel_suite(scale));
    let gatesim = find(&s, "GateSim");
    let gamteb = find(&s, "Gamteb");

    // Figures 11 + 12: file-size sweep.
    size_sweep_points(&mut s, gatesim, gamteb);
    // Figure 13: line-size sweep over both suites.
    line_size_points(&mut s, &seq, crate::SEQ_FILE_REGS, SEQ_WIDTHS);
    line_size_points(&mut s, &par, crate::PAR_FILE_REGS, PAR_WIDTHS);
    // Depth sweep (mechanism study).
    for depth in DEPTHS {
        let w = s.workload(sequential(SeqParams {
            depth,
            fanout: 1,
            locals: 6,
        }));
        s.point(w, nsf_config(crate::SEQ_FILE_REGS));
        s.point(w, segmented_config(4, SEQ_CTX_REGS));
    }
    s
}

fn find(s: &Sweep, name: &str) -> usize {
    s.workloads
        .iter()
        .position(|w| w.name == name)
        .unwrap_or_else(|| panic!("{name} not in the registered suites"))
}

/// Renders the sweep results as the three CSV files, in write order.
pub fn csvs(sweep: &Sweep, reports: &[RunReport]) -> Vec<Csv> {
    let seq_len = sweep
        .workloads
        .iter()
        .filter(|w| !w.parallel && w.name != "SynthSeq")
        .count();
    let par_len = sweep.workloads.iter().filter(|w| w.parallel).count();
    let mut c = Cursor::new(reports);

    let mut size_rows = Vec::new();
    for frames in 2..=10u32 {
        let [sn, ss, pn, ps] = [c.next(), c.next(), c.next(), c.next()];
        size_rows.push(format!(
            "{frames},{:.4},{:.4},{:.4},{:.4},{:.6},{:.6},{:.6},{:.6}",
            sn.occupancy.avg_contexts(),
            ss.occupancy.avg_contexts(),
            pn.occupancy.avg_contexts(),
            ps.occupancy.avg_contexts(),
            sn.reloads_per_instr(),
            ss.reloads_per_instr(),
            pn.reloads_per_instr(),
            ps.reloads_per_instr(),
        ));
    }

    let mut line_rows = Vec::new();
    for (parallel, widths, len) in [(false, SEQ_WIDTHS, seq_len), (true, PAR_WIDTHS, par_len)] {
        for &width in widths {
            let cells: Vec<String> = RELOAD_POLICIES
                .iter()
                .map(|_| format!("{:.6}", aggregate(c.take(len)).reloads_per_instr()))
                .collect();
            line_rows.push(format!(
                "{},{width},{}",
                if parallel { "parallel" } else { "sequential" },
                cells.join(",")
            ));
        }
    }

    let mut depth_rows = Vec::new();
    for depth in DEPTHS {
        let n = c.next();
        let s = c.next();
        depth_rows.push(format!(
            "{depth},{:.4},{:.4},{:.6},{:.6}",
            n.occupancy.avg_contexts(),
            s.occupancy.avg_contexts(),
            n.reloads_per_instr(),
            s.reloads_per_instr(),
        ));
    }
    c.finish();

    vec![
        Csv {
            name: "fig11_fig12_size_sweep.csv",
            header: "frames,seq_nsf_contexts,seq_seg_contexts,par_nsf_contexts,par_seg_contexts,\
                     seq_nsf_reloads_per_instr,seq_seg_reloads_per_instr,\
                     par_nsf_reloads_per_instr,par_seg_reloads_per_instr",
            rows: size_rows,
        },
        Csv {
            name: "fig13_line_size.csv",
            header: "suite,regs_per_line,whole_line,valid_only,single_register",
            rows: line_rows,
        },
        Csv {
            name: "depth_sweep.csv",
            header: "depth,nsf_contexts,seg_contexts,nsf_reloads_per_instr,seg_reloads_per_instr",
            rows: depth_rows,
        },
    ]
}
