//! Figure 10 — registers reloaded as a percentage of instructions.

use super::rule;
use crate::runner::{Cursor, Sweep};
use crate::{
    nsf_config, pct, segmented_config, PAR_CTX_REGS, PAR_FILE_REGS, SEQ_CTX_REGS, SEQ_FILE_REGS,
};
use nsf_sim::RunReport;
use std::fmt::Write;

/// Per paper benchmark: one NSF run and one 4-frame segmented run.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    for w in nsf_workloads::paper_suite(scale) {
        let (regs, frames, frame_regs) = if w.parallel {
            (PAR_FILE_REGS, 4, PAR_CTX_REGS)
        } else {
            (SEQ_FILE_REGS, 4, SEQ_CTX_REGS)
        };
        let idx = s.workload(w);
        s.point(idx, nsf_config(regs));
        s.point(idx, segmented_config(frames, frame_regs));
    }
    s
}

/// Reload traffic per benchmark: NSF, segmented, segmented live-only.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 10: Registers reloaded as % of instructions, scale {scale}"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>10} {:>14} {:>10}",
        "App", "NSF", "Segment", "Segment live", "Seg/NSF"
    )
    .unwrap();
    rule(&mut out, 60);
    let mut c = Cursor::new(reports);
    for w in &sweep.workloads {
        let nsf = c.next();
        let seg = c.next();
        let ratio = if nsf.reloads_per_instr() > 0.0 {
            seg.reloads_per_instr() / nsf.reloads_per_instr()
        } else {
            f64::INFINITY
        };
        writeln!(
            out,
            "{:<10} {:>10} {:>10} {:>14} {:>9.0}x",
            w.name,
            pct(nsf.reloads_per_instr()),
            pct(seg.reloads_per_instr()),
            pct(seg.live_reloads_per_instr()),
            ratio,
        )
        .unwrap();
    }
    c.finish();
    rule(&mut out, 60);
    if !quiet {
        out.push_str("Paper: segmented reloads 1,000-10,000x the NSF on sequential code and\n");
        out.push_str("10-40x on parallel code; live-only reloading still trails the NSF.\n");
    }
    out
}
