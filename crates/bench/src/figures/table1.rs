//! Table 1 — characteristics of the benchmark programs.

use super::rule;
use crate::runner::Sweep;
use crate::{nsf_config, PAR_FILE_REGS, SEQ_FILE_REGS};
use nsf_sim::RunReport;
use std::fmt::Write;

/// One NSF run per paper benchmark at its suite's file size.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    for w in nsf_workloads::paper_suite(scale) {
        let regs = if w.parallel {
            PAR_FILE_REGS
        } else {
            SEQ_FILE_REGS
        };
        let idx = s.workload(w);
        s.point(idx, nsf_config(regs));
    }
    s
}

/// The paper's Table 1 columns per benchmark.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], _quiet: bool) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Table 1: Characteristics of benchmark programs (scale {scale})"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "Benchmark", "Type", "Src", "Static", "Executed", "Instr/switch"
    )
    .unwrap();
    rule(&mut out, 66);
    for (i, r) in reports.iter().enumerate() {
        let w = sweep.workload_of(i);
        writeln!(
            out,
            "{:<10} {:>10} {:>8} {:>8} {:>12} {:>12.0}",
            w.name,
            if w.parallel { "Parallel" } else { "Sequential" },
            w.source_lines,
            r.static_instructions,
            r.instructions,
            r.instrs_per_switch(),
        )
        .unwrap();
    }
    out
}
