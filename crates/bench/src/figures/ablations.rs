//! Design-space ablations beyond the paper's figures (DESIGN.md §6):
//! replacement policy, write-miss policy, register pressure, switch
//! quantum, and explicit deallocation hints.

use super::rule;
use crate::runner::{Cursor, Sweep};
use crate::{aggregate, nsf_config, pct, segmented_config, PAR_CTX_REGS};
use nsf_core::{NsfConfig, ReplacementPolicy, WriteMissPolicy};
use nsf_sim::{RegFileSpec, RunReport, SimConfig};
use nsf_workloads::synth::{parallel, ParParams};
use std::fmt::Write;

/// Ablation 1's replacement policies, in output order.
const POLICIES: [(&str, ReplacementPolicy); 3] = [
    ("LRU", ReplacementPolicy::Lru),
    ("FIFO", ReplacementPolicy::Fifo),
    ("Random", ReplacementPolicy::Random { seed: 42 }),
];
/// Ablation 2's write-miss policies, in output order.
const WRITE_MISS: [(&str, WriteMissPolicy); 2] = [
    ("Write-allocate", WriteMissPolicy::WriteAllocate),
    ("Fetch-on-write", WriteMissPolicy::FetchOnWrite),
];
/// Ablation 3's active-register counts per synthetic thread.
const ACTIVE_REGS: [u8; 7] = [4, 8, 12, 16, 20, 24, 28];
/// Ablation 4's switch quanta (`None` = block multithreading).
const QUANTA: [Option<u64>; 4] = [None, Some(256), Some(64), Some(16)];
/// Ablation 5's NSF sizes.
const HINT_REGS: [u32; 3] = [40, 60, 80];

fn nsf_with(replacement: ReplacementPolicy, write_miss: WriteMissPolicy, total: u32) -> SimConfig {
    let mut cfg = NsfConfig::paper_default(total);
    cfg.replacement = replacement;
    cfg.write_miss = write_miss;
    SimConfig::with_regfile(RegFileSpec::Nsf(cfg))
}

/// All five ablation studies as one sweep.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    let suite = s.suite(nsf_workloads::parallel_suite(scale));

    // 1. Replacement policy over the parallel suite.
    for (_, policy) in POLICIES {
        for &w in &suite {
            s.point(w, nsf_with(policy, WriteMissPolicy::WriteAllocate, 128));
        }
    }
    // 2. Write-miss policy over the parallel suite.
    for (_, wm) in WRITE_MISS {
        for &w in &suite {
            s.point(w, nsf_with(ReplacementPolicy::Lru, wm, 128));
        }
    }
    // 3. Register pressure: synthetic threads with varying active sets.
    for active in ACTIVE_REGS {
        let w = s.workload(parallel(ParParams {
            threads: 16,
            iters: 24,
            work: 30,
            active_regs: active,
        }));
        s.point(w, nsf_config(128));
        s.point(w, segmented_config(4, PAR_CTX_REGS));
    }
    // 4. Block vs interleaved multithreading (one workload, four quanta).
    let w = s.workload(parallel(ParParams {
        threads: 8,
        iters: 6,
        work: 200,
        active_regs: 12,
    }));
    for quantum in QUANTA {
        let mut nsf_cfg = nsf_config(128);
        nsf_cfg.quantum = quantum;
        let mut seg_cfg = segmented_config(4, PAR_CTX_REGS);
        seg_cfg.quantum = quantum;
        s.point(w, nsf_cfg);
        s.point(w, seg_cfg);
    }
    // 5. Deallocation hints: both GateSim variants, three NSF sizes.
    let plain = s.workload(nsf_workloads::gatesim::build_with_hints(scale, false));
    let hinted = s.workload(nsf_workloads::gatesim::build_with_hints(scale, true));
    for regs in HINT_REGS {
        s.point(plain, nsf_config(regs));
        s.point(hinted, nsf_config(regs));
    }
    s
}

/// The five ablation tables.
pub fn render(_scale: u32, sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let suite_len = sweep
        .workloads
        .iter()
        .filter(|w| !w.name.starts_with("Synth") && w.parallel)
        .count();
    let mut out = String::new();
    let mut c = Cursor::new(reports);

    writeln!(
        out,
        "Ablation 1: NSF replacement policy (parallel suite, 128 regs)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<12} {:>12} {:>14}",
        "Policy", "Reloads/instr", "Spill cycles"
    )
    .unwrap();
    rule(&mut out, 40);
    for (name, _) in POLICIES {
        let agg = aggregate(c.take(suite_len));
        writeln!(
            out,
            "{:<12} {:>12} {:>14}",
            name,
            pct(agg.reloads_per_instr()),
            agg.regfile.spill_reload_cycles,
        )
        .unwrap();
    }

    writeln!(
        out,
        "\nAblation 2: NSF write-miss policy (parallel suite, 128 regs)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<16} {:>12} {:>14}",
        "Policy", "Reloads/instr", "Regs reloaded"
    )
    .unwrap();
    rule(&mut out, 44);
    for (name, _) in WRITE_MISS {
        let agg = aggregate(c.take(suite_len));
        writeln!(
            out,
            "{:<16} {:>12} {:>14}",
            name,
            pct(agg.reloads_per_instr()),
            agg.regfile.regs_reloaded,
        )
        .unwrap();
    }

    writeln!(
        out,
        "\nAblation 3: active registers per thread (synthetic, 16 threads)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>12} {:>16} {:>10}",
        "Active regs", "NSF rel/i", "Segment rel/i", "Advantage"
    )
    .unwrap();
    rule(&mut out, 56);
    for active in ACTIVE_REGS {
        let nsf = c.next();
        let seg = c.next();
        let adv = if nsf.reloads_per_instr() > 0.0 {
            format!("{:.1}x", seg.reloads_per_instr() / nsf.reloads_per_instr())
        } else {
            "inf".to_owned()
        };
        writeln!(
            out,
            "{:<14} {:>12} {:>16} {:>10}",
            active,
            pct(nsf.reloads_per_instr()),
            pct(seg.reloads_per_instr()),
            adv,
        )
        .unwrap();
    }
    rule(&mut out, 56);
    if !quiet {
        out.push_str("The segmented file always moves whole 32-register frames; the NSF\n");
        out.push_str("moves only what threads touch, so its advantage peaks when contexts\n");
        out.push_str("are sparse and shrinks as threads fill their frames.\n");
    }

    writeln!(out, "\nAblation 4: block vs interleaved multithreading").unwrap();
    writeln!(
        out,
        "(8 compute threads on a 4-frame file / 128-register NSF)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>14} {:>16} {:>14}",
        "Quantum", "NSF overhead", "Segment overhead", "Switches"
    )
    .unwrap();
    rule(&mut out, 62);
    for quantum in QUANTA {
        let nsf = c.next();
        let seg = c.next();
        writeln!(
            out,
            "{:<14} {:>14} {:>16} {:>14}",
            quantum.map_or("block".to_owned(), |q| format!("{q} instr")),
            pct(nsf.spill_overhead()),
            pct(seg.spill_overhead()),
            seg.thread_switches,
        )
        .unwrap();
    }
    rule(&mut out, 62);
    if !quiet {
        out.push_str("Finer interleaving multiplies frame traffic on the segmented file;\n");
        out.push_str("the NSF's demand misses barely notice (paper \u{00a7}3: its techniques\n");
        out.push_str("apply to both forms of multithreading).\n");
    }

    writeln!(
        out,
        "\nAblation 5: explicit register deallocation hints (paper \u{00a7}4.2)"
    )
    .unwrap();
    writeln!(
        out,
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "NSF regs", "Hints", "Reloads", "Spills", "Cycles"
    )
    .unwrap();
    rule(&mut out, 64);
    for regs in HINT_REGS {
        for hints in [false, true] {
            let r = c.next();
            writeln!(
                out,
                "{:<14} {:>10} {:>12} {:>12} {:>12}",
                regs,
                if hints { "rfree" } else { "none" },
                r.regfile.regs_reloaded,
                r.regfile.regs_spilled,
                r.cycles,
            )
            .unwrap();
        }
    }
    c.finish();
    rule(&mut out, 64);
    if !quiet {
        out.push_str("Freeing a register at its last use lets a small NSF drop dead values\n");
        out.push_str("instead of spilling them — \"the NSF can explicitly deallocate a single\n");
        out.push_str("register after it is no longer needed\".\n");
    }
    out
}
