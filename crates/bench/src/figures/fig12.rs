//! Figure 12 — registers reloaded as a percentage of instructions, for
//! different sizes of NSF and segmented register files.

use super::{rule, size_sweep_grid};
use crate::pct;
use crate::runner::{Cursor, Sweep};
use nsf_sim::RunReport;
use std::fmt::Write;

/// Same sweep as Figure 11 (the two figures share one grid).
pub fn grid(scale: u32) -> Sweep {
    size_sweep_grid(scale)
}

/// Reload traffic per frame count, sequential and parallel.
pub fn render(scale: u32, _sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Figure 12: Registers reloaded (% of instructions) vs file size, scale {scale}"
    )
    .unwrap();
    writeln!(
        out,
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "Frames", "Seq NSF", "Seq Segment", "Par NSF", "Par Segment"
    )
    .unwrap();
    rule(&mut out, 64);
    let mut c = Cursor::new(reports);
    for frames in 2..=10u32 {
        let [seq_nsf, seq_seg, par_nsf, par_seg] = [c.next(), c.next(), c.next(), c.next()];
        writeln!(
            out,
            "{:<8} {:>12} {:>12} {:>14} {:>14}",
            frames,
            pct(seq_nsf.reloads_per_instr()),
            pct(seq_seg.reloads_per_instr()),
            pct(par_nsf.reloads_per_instr()),
            pct(par_seg.reloads_per_instr()),
        )
        .unwrap();
    }
    c.finish();
    rule(&mut out, 64);
    if !quiet {
        out.push_str("Paper: the smallest NSF reloads an order of magnitude less than any\n");
        out.push_str("practical segmented file on sequential code; on parallel code the NSF\n");
        out.push_str("reloads 5-6x less than a segmented file of the same size.\n");
    }
    out
}
