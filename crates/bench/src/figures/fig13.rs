//! Figure 13 — registers reloaded vs line size, for three reload
//! strategies (whole line, live only, active/demand).

use super::{line_size_points, rule, PAR_WIDTHS, RELOAD_POLICIES, SEQ_WIDTHS};
use crate::runner::{Cursor, Sweep};
use crate::{aggregate, pct, PAR_FILE_REGS, SEQ_FILE_REGS};
use nsf_sim::RunReport;
use std::fmt::Write;

/// Both suites, every line width, every reload strategy.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    let seq = s.suite(nsf_workloads::sequential_suite(scale));
    line_size_points(&mut s, &seq, SEQ_FILE_REGS, SEQ_WIDTHS);
    let par = s.suite(nsf_workloads::parallel_suite(scale));
    line_size_points(&mut s, &par, PAR_FILE_REGS, PAR_WIDTHS);
    s
}

/// Suite-aggregated reload traffic per (line width, strategy) cell.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let seq_len = sweep.workloads.iter().filter(|w| !w.parallel).count();
    let par_len = sweep.workloads.len() - seq_len;
    let mut out = String::new();
    writeln!(
        out,
        "Figure 13: Registers reloaded (% of instructions) vs line size, scale {scale}"
    )
    .unwrap();
    let mut c = Cursor::new(reports);
    for (parallel, regs, widths, len) in [
        (false, SEQ_FILE_REGS, SEQ_WIDTHS, seq_len),
        (true, PAR_FILE_REGS, PAR_WIDTHS, par_len),
    ] {
        writeln!(
            out,
            "\n{} applications ({} registers):",
            if parallel { "Parallel" } else { "Sequential" },
            regs
        )
        .unwrap();
        writeln!(
            out,
            "{:<10} {:>14} {:>14} {:>14}",
            "Regs/line", "A: whole line", "B: live only", "C: active"
        )
        .unwrap();
        rule(&mut out, 56);
        for &width in widths {
            let cells: Vec<String> = RELOAD_POLICIES
                .iter()
                .map(|_| pct(aggregate(c.take(len)).reloads_per_instr()))
                .collect();
            writeln!(
                out,
                "{:<10} {:>14} {:>14} {:>14}",
                width, cells[0], cells[1], cells[2]
            )
            .unwrap();
        }
    }
    c.finish();
    out.push('\n');
    rule(&mut out, 56);
    if !quiet {
        out.push_str("Paper: an NSF with single-word lines reloads only 25% as many registers\n");
        out.push_str("as a tagged segmented file on parallel code; fine-grain associative\n");
        out.push_str("addressing matters more than valid bits alone.\n");
    }
    out
}
