//! Related-work comparison (paper §5): NSF vs segmented vs dribble-back
//! vs SPARC-style register windows.

use super::rule;
use crate::runner::{Cursor, Sweep};
use crate::{nsf_config, pct, segmented_config};
use nsf_core::segmented::DribbleConfig;
use nsf_core::SegmentedConfig;
use nsf_sim::{RegFileSpec, RunReport, SimConfig};
use std::fmt::Write;

/// Display names for the four organizations, in grid order per app.
const ORGS: [&str; 4] = [
    "NSF",
    "Segmented (HW assist)",
    "Segmented + dribble-back",
    "SPARC windows (traps)",
];

fn configs_for(parallel: bool) -> Vec<SimConfig> {
    let (regs, frames, frame_regs) = if parallel { (128, 4, 32) } else { (160, 8, 20) };
    let mut dribble = SegmentedConfig::paper_default(frames, frame_regs);
    dribble.dribble = Some(DribbleConfig { ops_per_reg: 4 });
    vec![
        nsf_config(regs),
        segmented_config(frames, frame_regs),
        SimConfig::with_regfile(RegFileSpec::Segmented(dribble)),
        SimConfig::with_regfile(RegFileSpec::sparc_windows(frame_regs)),
    ]
}

/// Four representative apps, each under the four organizations.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    for w in [
        nsf_workloads::gatesim::build(scale),
        nsf_workloads::zipfile::build(scale),
        nsf_workloads::gamteb::build(scale),
        nsf_workloads::quicksort::build(scale),
    ] {
        let parallel = w.parallel;
        let idx = s.workload(w);
        for cfg in configs_for(parallel) {
            s.point(idx, cfg);
        }
    }
    s
}

/// Reload traffic, overhead and CPI per app × organization.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "Related work: NSF vs segmented vs SPARC windows, scale {scale}"
    )
    .unwrap();
    writeln!(
        out,
        "{:<11} {:<26} {:>10} {:>10} {:>10}",
        "App", "Organization", "Reloads/i", "Overhead", "CPI"
    )
    .unwrap();
    rule(&mut out, 72);
    let mut c = Cursor::new(reports);
    for w in &sweep.workloads {
        for name in ORGS {
            let r = c.next();
            writeln!(
                out,
                "{:<11} {:<26} {:>10} {:>10} {:>10.2}",
                w.name,
                name,
                pct(r.reloads_per_instr()),
                pct(r.spill_overhead()),
                r.cpi(),
            )
            .unwrap();
        }
        rule(&mut out, 72);
    }
    c.finish();
    if !quiet {
        out.push_str("Windows handle call chains with boundary traps only, but flush the\n");
        out.push_str("whole resident set on a thread switch; the segmented file is the\n");
        out.push_str("mirror image; the NSF avoids both costs (paper §5).\n");
    }
    out
}
