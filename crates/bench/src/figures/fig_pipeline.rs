//! Pipeline figure — CPI versus frontend issue width, per register file
//! organization, with register-file port pressure made visible.
//!
//! The paper's machine is single-issue; this figure asks what its
//! register file organizations cost once a scoreboarded in-order
//! frontend tries to issue more than one instruction per cycle against
//! a fixed port budget. The file is provisioned with 3 read / 2 write
//! ports (one port beyond the paper's 3-ported baseline in each
//! direction) so that typical dependent pairs co-issue while wide
//! groups still collide — the collisions are charged to
//! `port_conflict_cycles`. CAM-decoded files (the NSF) additionally pay
//! their ported access-time premium (`nsf-vlsi`) on every co-issued
//! ported access.

use super::rule;
use crate::runner::{Cursor, Sweep};
use crate::{
    aggregate, nsf_config, segmented_config, segmented_software_config, PAR_CTX_REGS, SEQ_CTX_REGS,
};
use nsf_sim::{RunReport, SimConfig};
use std::fmt::Write;

/// Issue widths swept (1 is the paper's machine and the regression
/// anchor: its reports are bit-identical to the pre-pipeline harness).
pub const WIDTHS: [u32; 3] = [1, 2, 4];

/// Read ports arbitrated per cycle, every width.
pub const READ_PORTS: u32 = 3;
/// Write ports arbitrated per cycle, every width.
pub const WRITE_PORTS: u32 = 2;

/// Sequential frames, as in Figure 14 (6 × 20 = 120 registers).
const SEQ_FRAMES: u32 = 6;

/// Widens a baseline configuration's frontend.
fn at_width(mut cfg: SimConfig, width: u32) -> SimConfig {
    cfg.issue_width = width;
    cfg.read_ports = READ_PORTS;
    cfg.write_ports = WRITE_PORTS;
    cfg
}

/// Both suites × {NSF, segmented-HW, segmented-SW} × issue widths
/// {1, 2, 4}. Workloads are innermost so every (suite, engine, width)
/// cell is a contiguous chunk to aggregate.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    let seq = s.suite(nsf_workloads::sequential_suite(scale));
    let par = s.suite(nsf_workloads::parallel_suite(scale));
    let seq_engines = [
        nsf_config(SEQ_FRAMES * u32::from(SEQ_CTX_REGS)),
        segmented_config(SEQ_FRAMES, SEQ_CTX_REGS),
        segmented_software_config(SEQ_FRAMES, SEQ_CTX_REGS),
    ];
    let par_engines = [
        nsf_config(128),
        segmented_config(4, PAR_CTX_REGS),
        segmented_software_config(4, PAR_CTX_REGS),
    ];
    for (suite, engines) in [(&seq, seq_engines), (&par, par_engines)] {
        for cfg in engines {
            for width in WIDTHS {
                for &w in suite.iter() {
                    s.point(w, at_width(cfg, width));
                }
            }
        }
    }
    s
}

/// Port-conflict stall cycles per thousand instructions.
fn conflicts_per_ki(r: &RunReport) -> f64 {
    1000.0 * r.regfile.port_conflict_cycles as f64 / r.instructions.max(1) as f64
}

/// One row per (suite, engine): CPI at each width, and the port
/// pressure the multi-issue widths ran into.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], quiet: bool) -> String {
    let seq_len = sweep.workloads.iter().filter(|w| !w.parallel).count();
    let par_len = sweep.workloads.len() - seq_len;
    let mut out = String::new();
    writeln!(
        out,
        "Pipeline figure: CPI vs issue width ({READ_PORTS}R/{WRITE_PORTS}W file), scale {scale}"
    )
    .unwrap();
    writeln!(
        out,
        "{:<10} {:<14} {:>7} {:>7} {:>7} {:>10} {:>10}",
        "Suite", "Engine", "CPI@1", "CPI@2", "CPI@4", "conf/ki@2", "conf/ki@4"
    )
    .unwrap();
    rule(&mut out, 70);
    let mut c = Cursor::new(reports);
    for (suite, len) in [("Serial", seq_len), ("Parallel", par_len)] {
        for engine in ["NSF", "Segment (HW)", "Segment (SW)"] {
            let by_width: Vec<RunReport> = WIDTHS.iter().map(|_| aggregate(c.take(len))).collect();
            writeln!(
                out,
                "{:<10} {:<14} {:>7.3} {:>7.3} {:>7.3} {:>10.2} {:>10.2}",
                suite,
                engine,
                by_width[0].cpi(),
                by_width[1].cpi(),
                by_width[2].cpi(),
                conflicts_per_ki(&by_width[1]),
                conflicts_per_ki(&by_width[2]),
            )
            .unwrap();
        }
    }
    c.finish();
    rule(&mut out, 70);
    if !quiet {
        out.push_str("CPI is non-increasing in issue width for every organization; the\n");
        out.push_str("conf/ki columns count frontend stall cycles whose sole cause was\n");
        out.push_str("running out of register file ports. The NSF rows also charge the\n");
        out.push_str("CAM's ported access-time premium on every co-issued access, so\n");
        out.push_str("their width gains are slightly smaller than the segmented rows'.\n");
    }
    out
}
