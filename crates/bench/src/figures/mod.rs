//! Grid + render pairs for every data-driven experiment binary.
//!
//! Each submodule owns one table/figure and exposes:
//!
//! - `grid(scale) -> Sweep` — the full set of (workload, config) points,
//!   declared in output order, with every benchmark built exactly once;
//! - `render(scale, &sweep, &reports, quiet) -> String` — the printed
//!   table, a pure function of the sweep results (so it is identical
//!   for every `--threads` value).
//!
//! Binaries are thin wrappers over [`crate::figure_main`]; tests drive
//! the same functions directly (`tests/figures_smoke.rs` in this crate,
//! `tests/harness_determinism.rs` at the workspace root).

pub mod ablations;
pub mod depth_sweep;
pub mod export_csv;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig_pipeline;
pub mod related_work;
pub mod summary;
pub mod table1;

use crate::runner::Sweep;
use crate::{nsf_config, nsf_lines_config, segmented_config, PAR_CTX_REGS, SEQ_CTX_REGS};
use nsf_core::ReloadPolicy;

/// Appends a horizontal rule (string-building form of [`crate::rule`]).
pub(crate) fn rule(out: &mut String, width: usize) {
    out.push_str(&"-".repeat(width));
    out.push('\n');
}

/// Line widths swept for the sequential suite in Figure 13.
pub(crate) const SEQ_WIDTHS: &[u8] = &[1, 2, 4, 8, 16];
/// Line widths swept for the parallel suite in Figure 13.
pub(crate) const PAR_WIDTHS: &[u8] = &[1, 2, 4, 8, 16, 32];
/// The three reload strategies of Figure 13 (curves A, B, C).
pub(crate) const RELOAD_POLICIES: [ReloadPolicy; 3] = [
    ReloadPolicy::WholeLine,
    ReloadPolicy::ValidOnly,
    ReloadPolicy::SingleRegister,
];

/// The Figure 11/12 file-size sweep: GateSim and Gamteb, both register
/// file kinds, at 2–10 context-sized frames. Shared by `fig11`, `fig12`
/// and `export_csv`. Row order per frame count: sequential NSF,
/// sequential segmented, parallel NSF, parallel segmented.
pub(crate) fn size_sweep_points(s: &mut Sweep, gatesim: usize, gamteb: usize) {
    for frames in 2..=10u32 {
        s.point(gatesim, nsf_config(frames * u32::from(SEQ_CTX_REGS)));
        s.point(gatesim, segmented_config(frames, SEQ_CTX_REGS));
        s.point(gamteb, nsf_config(frames * u32::from(PAR_CTX_REGS)));
        s.point(gamteb, segmented_config(frames, PAR_CTX_REGS));
    }
}

/// The two-workload sweep behind Figures 11 and 12.
pub(crate) fn size_sweep_grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    let gatesim = s.workload(nsf_workloads::gatesim::build(scale));
    let gamteb = s.workload(nsf_workloads::gamteb::build(scale));
    size_sweep_points(&mut s, gatesim, gamteb);
    s
}

/// The Figure 13 line-size sweep over one suite: every width, every
/// reload policy, every workload (innermost, so each `(width, policy)`
/// cell is a contiguous chunk to aggregate).
pub(crate) fn line_size_points(s: &mut Sweep, suite: &[usize], regs: u32, widths: &[u8]) {
    for &width in widths {
        for policy in RELOAD_POLICIES {
            for &w in suite {
                s.point(w, nsf_lines_config(regs, width, policy));
            }
        }
    }
}
