//! One-page digest: the paper's conclusion bullets (§9), each measured
//! in a single sweep (claims 5–6 are closed-form VLSI models and are
//! evaluated at render time).

use crate::runner::{Cursor, Sweep};
use crate::{
    aggregate, nsf_config, segmented_config, segmented_software_config, PAR_CTX_REGS,
    PAR_FILE_REGS, SEQ_CTX_REGS, SEQ_FILE_REGS,
};
use nsf_sim::RunReport;
use nsf_vlsi::{AreaModel, Geometry, Ports, Tech, TimingModel};
use std::fmt::Write;

/// Figure 14's sequential frame count (6 × 20 = 120 registers).
const SEQ_FRAMES: u32 = 6;

/// Claims 1–3: per-benchmark NSF/segmented pairs (the GateSim pair
/// doubles as the claim 2/3 measurement). Claim 4: the Figure 14 grid.
pub fn grid(scale: u32) -> Sweep {
    let mut s = Sweep::new();
    let seq = s.suite(nsf_workloads::sequential_suite(scale));
    let par = s.suite(nsf_workloads::parallel_suite(scale));
    for &w in seq.iter().chain(&par) {
        let (regs, frames, fr) = if s.workloads[w].parallel {
            (PAR_FILE_REGS, 4, PAR_CTX_REGS)
        } else {
            (SEQ_FILE_REGS, 4, SEQ_CTX_REGS)
        };
        s.point(w, nsf_config(regs));
        s.point(w, segmented_config(frames, fr));
    }
    for &w in &seq {
        s.point(w, nsf_config(SEQ_FRAMES * u32::from(SEQ_CTX_REGS)));
    }
    for &w in &seq {
        s.point(w, segmented_config(SEQ_FRAMES, SEQ_CTX_REGS));
    }
    for &w in &seq {
        s.point(w, segmented_software_config(SEQ_FRAMES, SEQ_CTX_REGS));
    }
    for &w in &par {
        s.point(w, nsf_config(128));
    }
    for &w in &par {
        s.point(w, segmented_config(4, PAR_CTX_REGS));
    }
    for &w in &par {
        s.point(w, segmented_software_config(4, PAR_CTX_REGS));
    }
    s
}

/// The six conclusion bullets, measured.
pub fn render(scale: u32, sweep: &Sweep, reports: &[RunReport], _quiet: bool) -> String {
    let seq_len = sweep.workloads.iter().filter(|w| !w.parallel).count();
    let par_len = sweep.workloads.len() - seq_len;
    let mut out = String::new();
    writeln!(
        out,
        "The Named-State Register File — reproduction digest (scale {scale})"
    )
    .unwrap();
    writeln!(
        out,
        "Paper claims (§9) vs this repository's measurements:\n"
    )
    .unwrap();

    let mut c = Cursor::new(reports);

    // Claim 1: more active data than a conventional file of the same size.
    let mut ratios = Vec::new();
    let mut gatesim_pair: Option<(&RunReport, &RunReport)> = None;
    for w in &sweep.workloads {
        let n = c.next();
        let s = c.next();
        if s.utilization() > 0.0 {
            ratios.push(n.utilization() / s.utilization());
        }
        if w.name == "GateSim" {
            gatesim_pair = Some((n, s));
        }
    }
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    writeln!(
        out,
        "1. \"The NSF holds 30% to 200% more active data\"\n   -> measured: up to {:.0}% more ({} benchmarks)\n",
        (max_ratio - 1.0) * 100.0,
        ratios.len()
    )
    .unwrap();

    // Claims 2 and 3 reuse the claim-1 GateSim pair (same configurations:
    // 80-register NSF vs the 4-frame, 20-register segmented file).
    let (n, s) = gatesim_pair.expect("GateSim in the sequential suite");
    writeln!(
        out,
        "2. \"Holds twice as many procedure call frames as a conventional file\"\n   -> measured (GateSim, 80 regs): NSF {:.1} vs segmented {:.1} resident contexts\n",
        n.occupancy.avg_contexts(),
        s.occupancy.avg_contexts()
    )
    .unwrap();
    writeln!(
        out,
        "3. \"Can hold the entire call chain, spilling at 1e-4 the rate\"\n   -> measured (GateSim): NSF {} reloads vs segmented {} ({} instructions)\n",
        n.regfile.regs_reloaded, s.regfile.regs_reloaded, n.instructions
    )
    .unwrap();

    // Claim 4: execution overhead (Figure 14).
    let nsf_ser = aggregate(c.take(seq_len));
    let hw_ser = aggregate(c.take(seq_len));
    let sw_ser = aggregate(c.take(seq_len));
    let nsf_par = aggregate(c.take(par_len));
    let hw_par = aggregate(c.take(par_len));
    let sw_par = aggregate(c.take(par_len));
    c.finish();
    writeln!(
        out,
        "4. \"Speeds execution by eliminating register spills and reloads\"\n   -> overhead serial:   NSF {:.2}%  seg-HW {:.2}%  seg-SW {:.2}%  (paper 0.01/8.47/15.54)\n   -> overhead parallel: NSF {:.2}%  seg-HW {:.2}%  seg-SW {:.2}%  (paper 12.1/26.7/38.1)\n",
        nsf_ser.spill_overhead() * 100.0,
        hw_ser.spill_overhead() * 100.0,
        sw_ser.spill_overhead() * 100.0,
        nsf_par.spill_overhead() * 100.0,
        hw_par.spill_overhead() * 100.0,
        sw_par.spill_overhead() * 100.0,
    )
    .unwrap();

    // Claims 5 & 6: implementation cost (closed-form VLSI models).
    let t = TimingModel::new(Tech::cmos_1p2um());
    let a = AreaModel::new(Tech::cmos_1p2um());
    writeln!(
        out,
        "5. \"Access time is only 5% greater\"\n   -> measured: +{:.1}% (32x128), +{:.1}% (64x64)\n",
        t.nsf_overhead(Geometry::g32x128()) * 100.0,
        t.nsf_overhead(Geometry::g64x64()) * 100.0,
    )
    .unwrap();
    writeln!(
        out,
        "6. \"16% to 50% more chip area ... only 1% to 5% of a processor\"\n   -> measured: +{:.0}% to +{:.0}% file area; {:.1}% of a die at a 10% file share",
        a.nsf_overhead(Geometry::g64x64(), Ports::six()) * 100.0,
        a.nsf_overhead(Geometry::g32x128(), Ports::three()) * 100.0,
        a.processor_overhead(Geometry::g32x128(), Ports::three(), 0.10) * 100.0,
    )
    .unwrap();
    out
}
