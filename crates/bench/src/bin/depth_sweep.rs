//! Mechanism exposition: call-chain depth is what the NSF converts into
//! resident contexts. The synthetic recursive workload sweeps depth
//! while the paper benchmarks fix it; this sweep shows the segmented
//! file saturating at its frame count while the NSF tracks the chain
//! until its registers run out.

use nsf_bench::{measure, nsf_config, pct, segmented_config, SEQ_CTX_REGS, SEQ_FILE_REGS};
use nsf_workloads::synth::{sequential, SeqParams};

fn main() {
    println!("Call-chain depth sweep (synthetic recursion, 6 locals/activation)");
    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>14}",
        "Depth", "NSF contexts", "Seg contexts", "NSF reloads", "Seg reloads"
    );
    nsf_bench::rule(64);
    for depth in [2u32, 4, 6, 8, 12, 16, 24] {
        let w = sequential(SeqParams { depth, fanout: 1, locals: 6 });
        let n = measure(&w, nsf_config(SEQ_FILE_REGS));
        let s = measure(&w, segmented_config(4, SEQ_CTX_REGS));
        println!(
            "{:<8} {:>12.2} {:>14.2} {:>12} {:>14}",
            depth,
            n.occupancy.avg_contexts(),
            s.occupancy.avg_contexts(),
            pct(n.reloads_per_instr()),
            pct(s.reloads_per_instr()),
        );
    }
    nsf_bench::rule(64);
    println!("The segmented file cannot hold more than its 4 frames no matter the");
    println!("chain; the NSF keeps absorbing activations until its 80 registers");
    println!("fill, and even then demand-reloads only what returns actually touch.");
}
