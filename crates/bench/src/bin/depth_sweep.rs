//! Mechanism exposition: call-chain depth is what the NSF converts into
//! resident contexts. The synthetic recursive workload sweeps depth
//! while the paper benchmarks fix it. See
//! [`nsf_bench::figures::depth_sweep`] for the grid.

use nsf_bench::figures::depth_sweep;

fn main() {
    nsf_bench::figure_main(depth_sweep::grid, depth_sweep::render);
}
