//! Design-space ablations beyond the paper's figures (DESIGN.md §6):
//! replacement policy, write-miss policy, register pressure, switch
//! quantum, and explicit deallocation hints. See
//! [`nsf_bench::figures::ablations`] for the grid.

use nsf_bench::figures::ablations;

fn main() {
    nsf_bench::figure_main(ablations::grid, ablations::render);
}
