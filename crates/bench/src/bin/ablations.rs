//! Design-space ablations beyond the paper's figures (DESIGN.md §6).
//!
//! 1. **Replacement policy** — the paper simulates LRU only; how much
//!    does the choice matter for NSF reload traffic?
//! 2. **Write-miss policy** — write-allocate (the paper's default) vs
//!    fetch-on-write.
//! 3. **Register pressure** — synthetic parallel threads with varying
//!    active-register counts: where does the NSF's advantage over the
//!    segmented file come from?

use nsf_bench::{aggregate, measure, pct, scale_from_args, segmented_config, PAR_CTX_REGS};
use nsf_core::{NsfConfig, ReplacementPolicy, WriteMissPolicy};
use nsf_sim::{RegFileSpec, SimConfig};
use nsf_workloads::synth::{parallel, ParParams};

fn nsf_with(
    replacement: ReplacementPolicy,
    write_miss: WriteMissPolicy,
    total: u32,
) -> SimConfig {
    let mut cfg = NsfConfig::paper_default(total);
    cfg.replacement = replacement;
    cfg.write_miss = write_miss;
    SimConfig::with_regfile(RegFileSpec::Nsf(cfg))
}

fn main() {
    let scale = scale_from_args();
    let suite = nsf_workloads::parallel_suite(scale);

    println!("Ablation 1: NSF replacement policy (parallel suite, 128 regs)");
    println!("{:<12} {:>12} {:>14}", "Policy", "Reloads/instr", "Spill cycles");
    nsf_bench::rule(40);
    for (name, policy) in [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Random", ReplacementPolicy::Random { seed: 42 }),
    ] {
        let reports: Vec<_> = suite
            .iter()
            .map(|w| measure(w, nsf_with(policy, WriteMissPolicy::WriteAllocate, 128)))
            .collect();
        let agg = aggregate(&reports);
        println!(
            "{:<12} {:>12} {:>14}",
            name,
            pct(agg.reloads_per_instr()),
            agg.regfile.spill_reload_cycles,
        );
    }

    println!("\nAblation 2: NSF write-miss policy (parallel suite, 128 regs)");
    println!("{:<16} {:>12} {:>14}", "Policy", "Reloads/instr", "Regs reloaded");
    nsf_bench::rule(44);
    for (name, wm) in [
        ("Write-allocate", WriteMissPolicy::WriteAllocate),
        ("Fetch-on-write", WriteMissPolicy::FetchOnWrite),
    ] {
        let reports: Vec<_> = suite
            .iter()
            .map(|w| measure(w, nsf_with(ReplacementPolicy::Lru, wm, 128)))
            .collect();
        let agg = aggregate(&reports);
        println!(
            "{:<16} {:>12} {:>14}",
            name,
            pct(agg.reloads_per_instr()),
            agg.regfile.regs_reloaded,
        );
    }

    println!("\nAblation 3: active registers per thread (synthetic, 16 threads)");
    println!(
        "{:<14} {:>12} {:>16} {:>10}",
        "Active regs", "NSF rel/i", "Segment rel/i", "Advantage"
    );
    nsf_bench::rule(56);
    for active in [4u8, 8, 12, 16, 20, 24, 28] {
        let w = parallel(ParParams {
            threads: 16,
            iters: 24,
            work: 30,
            active_regs: active,
        });
        let nsf = measure(&w, nsf_bench::nsf_config(128));
        let seg = measure(&w, segmented_config(4, PAR_CTX_REGS));
        let adv = if nsf.reloads_per_instr() > 0.0 {
            format!("{:.1}x", seg.reloads_per_instr() / nsf.reloads_per_instr())
        } else {
            "inf".to_owned()
        };
        println!(
            "{:<14} {:>12} {:>16} {:>10}",
            active,
            pct(nsf.reloads_per_instr()),
            pct(seg.reloads_per_instr()),
            adv,
        );
    }
    nsf_bench::rule(56);
    println!("The segmented file always moves whole 32-register frames; the NSF");
    println!("moves only what threads touch, so its advantage peaks when contexts");
    println!("are sparse and shrinks as threads fill their frames.");

    println!("\nAblation 4: block vs interleaved multithreading");
    println!("(8 compute threads on a 4-frame file / 128-register NSF)");
    println!(
        "{:<14} {:>14} {:>16} {:>14}",
        "Quantum", "NSF overhead", "Segment overhead", "Switches"
    );
    nsf_bench::rule(62);
    let w = parallel(ParParams { threads: 8, iters: 6, work: 200, active_regs: 12 });
    for quantum in [None, Some(256u64), Some(64), Some(16)] {
        let mut nsf_cfg = nsf_bench::nsf_config(128);
        nsf_cfg.quantum = quantum;
        let mut seg_cfg = segmented_config(4, PAR_CTX_REGS);
        seg_cfg.quantum = quantum;
        let nsf = measure(&w, nsf_cfg);
        let seg = measure(&w, seg_cfg);
        println!(
            "{:<14} {:>14} {:>16} {:>14}",
            quantum.map_or("block".to_owned(), |q| format!("{q} instr")),
            pct(nsf.spill_overhead()),
            pct(seg.spill_overhead()),
            seg.thread_switches,
        );
    }
    nsf_bench::rule(62);
    println!("Finer interleaving multiplies frame traffic on the segmented file;");
    println!("the NSF's demand misses barely notice (paper \u{00a7}3: its techniques");
    println!("apply to both forms of multithreading).");

    println!("\nAblation 5: explicit register deallocation hints (paper \u{00a7}4.2)");
    println!(
        "{:<14} {:>10} {:>12} {:>12} {:>12}",
        "NSF regs", "Hints", "Reloads", "Spills", "Cycles"
    );
    nsf_bench::rule(64);
    for regs in [40u32, 60, 80] {
        for hints in [false, true] {
            let w = nsf_workloads::gatesim::build_with_hints(scale, hints);
            let r = measure(&w, nsf_bench::nsf_config(regs));
            println!(
                "{:<14} {:>10} {:>12} {:>12} {:>12}",
                regs,
                if hints { "rfree" } else { "none" },
                r.regfile.regs_reloaded,
                r.regfile.regs_spilled,
                r.cycles,
            );
        }
    }
    nsf_bench::rule(64);
    println!("Freeing a register at its last use lets a small NSF drop dead values");
    println!("instead of spilling them — \"the NSF can explicitly deallocate a single");
    println!("register after it is no longer needed\".");
}
