//! Differential fuzzing, shrinking and repro replay for the register
//! file organizations (`nsf-check`).
//!
//! ```sh
//! # 500 seeded streams through every windowed-family lane:
//! cargo run --release -p nsf-bench --bin check_tool -- \
//!     fuzz --family windowed --iters 500
//!
//! # All families, a different seed range, exporting any divergence as
//! # a shrunk .nsftrace repro into a directory:
//! cargo run --release -p nsf-bench --bin check_tool -- \
//!     fuzz --family all --seed 1000 --iters 200 --repro-dir repros/
//!
//! # Reduce one known-bad seed to a minimal repro:
//! cargo run --release -p nsf-bench --bin check_tool -- \
//!     shrink --family nsf --seed 42 --out bad.nsftrace
//!
//! # Replay checked-in repros (the regression gate: all must be clean):
//! cargo run --release -p nsf-bench --bin check_tool -- \
//!     replay-repro crates/check/tests/repros/*.nsftrace
//! ```
//!
//! Exit codes: 0 clean, 1 divergence found (or a repro still failing),
//! 2 runtime error, 64 usage error. Everything is a pure function of
//! `--seed`; reruns reproduce bit-for-bit.

use nsf_bench::{CliArgs, CliError, CliSpec};
use nsf_check::run::{check_family, check_family_stepped, LaneReport};
use nsf_check::{
    check_seed, check_seed_stepped, fault_plan_for_seed, generate, shrink, Divergence, Family,
    Repro, StreamConfig,
};
use nsf_trace::RegEvent;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: check_tool fuzz [--family NAME|all] [--seed N] [--iters N] [--ops N] [--repro-dir DIR] [--lane-step] [--quiet]\n\
         \x20      check_tool shrink --family NAME --seed N [--ops N] [--out FILE]\n\
         \x20      check_tool replay-repro FILE...\n\
         families: nsf, segmented, segmented-sw, windowed, conventional\n\
         --lane-step fuzzes the batched executor's lockstep path (EngineDispatch::step_lanes)"
    );
    ExitCode::from(64)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("check_tool: {msg}");
    ExitCode::from(2)
}

/// The flags each subcommand accepts (strict: anything else errors).
fn spec_for(cmd: &str) -> Option<CliSpec> {
    match cmd {
        "fuzz" => Some(CliSpec {
            value_flags: &["family", "seed", "iters", "ops", "repro-dir"],
            switches: &["quiet", "lane-step"],
            repeatable: &[],
        }),
        "shrink" => Some(CliSpec {
            value_flags: &["family", "seed", "ops", "out"],
            switches: &[],
            repeatable: &[],
        }),
        "replay-repro" => Some(CliSpec {
            value_flags: &[],
            switches: &[],
            repeatable: &[],
        }),
        _ => None,
    }
}

fn families_arg(args: &CliArgs) -> Result<Vec<Family>, String> {
    match args.flag("family") {
        None | Some("all") => Ok(Family::ALL.to_vec()),
        Some(name) => Family::from_name(name)
            .map(|f| vec![f])
            .ok_or_else(|| format!("unknown family {name:?}")),
    }
}

fn stream_config(args: &CliArgs) -> Result<StreamConfig, CliError> {
    let mut cfg = StreamConfig::default();
    cfg.ops = args.parsed_or("ops", cfg.ops)?;
    Ok(cfg)
}

/// A family checker: the independent per-lane runner or, under
/// `--lane-step`, the lockstep runner over the batched executor's
/// `step_lanes` path. Shrinking must reduce against the same runner
/// that found the failure, so the choice threads through here.
type Checker = fn(Family, &[RegEvent], nsf_core::FaultPlan) -> Result<Vec<LaneReport>, Divergence>;

/// Reduces a diverging stream to a minimal one that still produces the
/// *same* failure (lane and kind), then re-derives the final divergence
/// from the minimal stream.
fn shrink_divergence(
    checker: Checker,
    family: Family,
    ops: &[RegEvent],
    plan: nsf_core::FaultPlan,
    original: &Divergence,
) -> (Vec<RegEvent>, Divergence) {
    let same_failure = |cand: &[RegEvent]| {
        matches!(checker(family, cand, plan),
            Err(d) if d.lane == original.lane && d.kind == original.kind)
    };
    let small = shrink(ops, same_failure);
    let d = checker(family, &small, plan).expect_err("shrink preserves the failure");
    (small, d)
}

fn report_divergence(
    checker: Checker,
    family: Family,
    seed: Option<u64>,
    ops: &[RegEvent],
    plan: nsf_core::FaultPlan,
    d: &Divergence,
    repro_dir: Option<&str>,
) -> Result<(), String> {
    match seed {
        Some(seed) => eprintln!("DIVERGENCE family {family} seed {seed}: {d}"),
        None => eprintln!("DIVERGENCE family {family}: {d}"),
    }
    let (small, small_d) = shrink_divergence(checker, family, ops, plan, d);
    eprintln!(
        "shrunk {} ops -> {} (plan {:?}): {small_d}",
        ops.len(),
        small.len(),
        plan
    );
    for (i, ev) in small.iter().enumerate() {
        eprintln!("  {i:>3}: {ev}");
    }
    if let Some(dir) = repro_dir {
        let name = match seed {
            Some(seed) => format!("{dir}/{family}-seed{seed}.nsftrace"),
            None => format!("{dir}/{family}.nsftrace"),
        };
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        Repro {
            family,
            plan,
            ops: small.clone(),
        }
        .write_file(&name)?;
        eprintln!("repro written to {name}");
    }
    Ok(())
}

/// Runs `iters` seeds per family; stops a family at its first
/// divergence. `Ok(true)` means everything was clean.
fn cmd_fuzz(args: &CliArgs) -> Result<bool, String> {
    let families = families_arg(args)?;
    let start: u64 = args.parsed_or("seed", 0u64).map_err(|e| e.to_string())?;
    let iters: u64 = args.parsed_or("iters", 500u64).map_err(|e| e.to_string())?;
    let cfg = stream_config(args).map_err(|e| e.to_string())?;
    let quiet = args.switch("quiet");
    let lane_step = args.switch("lane-step");
    let repro_dir = args.flag("repro-dir");
    type SeedCheck = fn(
        Family,
        &StreamConfig,
        u64,
    ) -> (
        Vec<RegEvent>,
        nsf_core::FaultPlan,
        Result<Vec<LaneReport>, Divergence>,
    );
    let (seed_check, checker): (SeedCheck, Checker) = if lane_step {
        (check_seed_stepped, check_family_stepped)
    } else {
        (check_seed, check_family)
    };
    let mut clean = true;

    for family in families {
        let mut faults = 0u64;
        let mut diverged = false;
        for seed in start..start + iters {
            let (ops, plan, verdict) = seed_check(family, &cfg, seed);
            match verdict {
                Ok(reports) => faults += reports.iter().map(|r| r.faults_absorbed).sum::<u64>(),
                Err(d) => {
                    report_divergence(checker, family, Some(seed), &ops, plan, &d, repro_dir)?;
                    clean = false;
                    diverged = true;
                    break;
                }
            }
        }
        if !diverged && !quiet {
            let mode = if lane_step { ", lane-stepped" } else { "" };
            println!(
                "{family:<13} {iters} seeds clean ({} lanes{mode}, {faults} injected faults absorbed)",
                family.lanes().len()
            );
        }
    }
    Ok(clean)
}

fn cmd_shrink(args: &CliArgs) -> Result<bool, String> {
    let families = families_arg(args)?;
    let [family] = families[..] else {
        return Err("shrink needs one --family (not `all`)".into());
    };
    let seed: u64 = args.parsed_or("seed", 0u64).map_err(|e| e.to_string())?;
    let cfg = stream_config(args).map_err(|e| e.to_string())?;
    let ops = generate(&cfg, seed);
    let plan = fault_plan_for_seed(seed);
    match check_family(family, &ops, plan) {
        Ok(_) => {
            println!("family {family} seed {seed}: no divergence; nothing to shrink");
            Ok(true)
        }
        Err(d) => {
            let repro_dir = args.flag("out").map(|_| ());
            let (small, small_d) = shrink_divergence(check_family, family, &ops, plan, &d);
            eprintln!(
                "family {family} seed {seed}: shrunk {} ops -> {}: {small_d}",
                ops.len(),
                small.len()
            );
            for (i, ev) in small.iter().enumerate() {
                eprintln!("  {i:>3}: {ev}");
            }
            if repro_dir.is_some() {
                let out = args.flag("out").expect("just checked");
                Repro {
                    family,
                    plan,
                    ops: small,
                }
                .write_file(out)?;
                eprintln!("repro written to {out}");
            }
            Ok(false)
        }
    }
}

/// Replays checked-in repros; each must now run clean (the divergence
/// it captured has been fixed).
fn cmd_replay_repro(args: &CliArgs) -> Result<bool, String> {
    let paths = args.positional();
    if paths.is_empty() {
        return Err("replay-repro needs at least one .nsftrace file".into());
    }
    let mut clean = true;
    for path in paths {
        let repro = Repro::read_file(path)?;
        match check_family(repro.family, &repro.ops, repro.plan) {
            Ok(_) => println!(
                "{path}: clean ({} ops, family {}, plan {})",
                repro.ops.len(),
                repro.family,
                nsf_check::repro::encode_plan(repro.plan),
            ),
            Err(d) => {
                eprintln!("{path}: STILL DIVERGES: {d}");
                clean = false;
            }
        }
    }
    Ok(clean)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().map(String::as_str) else {
        return usage();
    };
    let Some(spec) = spec_for(cmd) else {
        return usage();
    };
    let args = match CliArgs::parse(&raw[1..], &spec) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("check_tool {cmd}: {e}");
            return usage();
        }
    };
    let result = match cmd {
        "fuzz" => cmd_fuzz(&args),
        "shrink" => cmd_shrink(&args),
        "replay-repro" => cmd_replay_repro(&args),
        _ => unreachable!("spec_for gated the command"),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => fail(e),
    }
}
