//! Figure 7 — area of 3-ported (1W+2R) register files in 1.2 µm CMOS.
//!
//! "Area is shown for register file decoder, word line and valid bit
//! logic, and data array. All register files have one write and two read
//! ports." The ratio column normalises to Segment 32x128, matching the
//! paper's percentage annotations (100% / 89% / 154% / 120%).

fn main() {
    // No scale needed; parsing still validates the flag set (exit 64).
    let _ = nsf_bench::scale_from_args();
    nsf_bench::print_area_figure(
        "Figure 7",
        nsf_vlsi::Ports::three(),
        "one write and two read ports",
    );
}
