//! Figure 10 — registers reloaded as a percentage of instructions.
//!
//! "Also registers containing live data that are reloaded by segmented
//! register file." (log scale in the paper; we print the raw
//! percentages). See [`nsf_bench::figures::fig10`] for the grid.

use nsf_bench::figures::fig10;

fn main() {
    nsf_bench::figure_main(fig10::grid, fig10::render);
}
