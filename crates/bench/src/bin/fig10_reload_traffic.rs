//! Figure 10 — registers reloaded as a percentage of instructions.
//!
//! "Also registers containing live data that are reloaded by segmented
//! register file. Each register file contains 80 registers for sequential
//! simulations, or 128 registers for parallel simulations." (log scale in
//! the paper; we print the raw percentages).

use nsf_bench::{
    measure, nsf_config, pct, scale_from_args, segmented_config, PAR_CTX_REGS, PAR_FILE_REGS,
    SEQ_CTX_REGS, SEQ_FILE_REGS,
};

fn main() {
    let scale = scale_from_args();
    println!("Figure 10: Registers reloaded as % of instructions, scale {scale}");
    println!(
        "{:<10} {:>10} {:>10} {:>14} {:>10}",
        "App", "NSF", "Segment", "Segment live", "Seg/NSF"
    );
    nsf_bench::rule(60);
    for w in nsf_workloads::paper_suite(scale) {
        let (regs, frames, frame_regs) = if w.parallel {
            (PAR_FILE_REGS, 4, PAR_CTX_REGS)
        } else {
            (SEQ_FILE_REGS, 4, SEQ_CTX_REGS)
        };
        let nsf = measure(&w, nsf_config(regs));
        let seg = measure(&w, segmented_config(frames, frame_regs));
        let ratio = if nsf.reloads_per_instr() > 0.0 {
            seg.reloads_per_instr() / nsf.reloads_per_instr()
        } else {
            f64::INFINITY
        };
        println!(
            "{:<10} {:>10} {:>10} {:>14} {:>9.0}x",
            w.name,
            pct(nsf.reloads_per_instr()),
            pct(seg.reloads_per_instr()),
            pct(seg.live_reloads_per_instr()),
            ratio,
        );
    }
    nsf_bench::rule(60);
    println!("Paper: segmented reloads 1,000-10,000x the NSF on sequential code and");
    println!("10-40x on parallel code; live-only reloading still trails the NSF.");
}
