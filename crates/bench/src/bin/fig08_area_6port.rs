//! Figure 8 — area of six-ported (2W+4R) register files in 1.2 µm CMOS.
//!
//! "These register files have two write and four read ports." The NSF's
//! relative overhead shrinks versus Figure 7 because the data array grows
//! quadratically with ports while the decoder grows only linearly.

fn main() {
    // No scale needed; parsing still validates the flag set (exit 64).
    let _ = nsf_bench::scale_from_args();
    nsf_bench::print_area_figure(
        "Figure 8",
        nsf_vlsi::Ports::six(),
        "two write and four read ports",
    );
}
