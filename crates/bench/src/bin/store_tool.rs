//! Inspect and garbage-collect the persistent stream store
//! (`results/store/` by default — the content-addressed `.nsfs`
//! entries that `run --store` and `nsf-explore` share across runs).
//!
//! ```sh
//! # Entry count, byte total and integrity census:
//! cargo run --release -p nsf-bench --bin store_tool -- info
//!
//! # Drop invalid entries and shrink below a byte budget:
//! cargo run --release -p nsf-bench --bin store_tool -- \
//!     gc --max-bytes 50000000
//! ```
//!
//! `gc` is deterministic: invalid entries (bad checksum, foreign magic
//! or version, name/fingerprint mismatch, stray temp files) go first,
//! then intact entries are evicted **largest first** (ties broken by
//! filename) until the store fits the budget. Without `--max-bytes` it
//! only removes the invalid entries. The explorer's result memo
//! (`explore_memo.nsfm`) is not a stream entry and is left alone.

use nsf_bench::{CliArgs, CliSpec};
use nsf_trace::validate_stream_bytes;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: store_tool info [--dir DIR]\n\
         \x20      store_tool gc [--dir DIR] [--max-bytes N]"
    );
    ExitCode::from(64)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("store_tool: {msg}");
    ExitCode::from(2)
}

/// One file in the store directory that `store_tool` manages.
struct Entry {
    name: String,
    path: PathBuf,
    bytes: u64,
    /// `None` when intact; `Some(reason)` when the entry must go.
    invalid: Option<String>,
}

/// Scans the store: every `.nsfs` entry (validated against the
/// fingerprint its filename claims) plus leftover `.tmp*` files from
/// interrupted saves. Anything else in the directory is not ours.
/// Entries come back sorted by filename — scan order never leaks into
/// eviction order.
fn scan(dir: &Path) -> std::io::Result<Vec<Entry>> {
    let mut entries = Vec::new();
    let rd = match std::fs::read_dir(dir) {
        Ok(rd) => rd,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(entries),
        Err(e) => return Err(e),
    };
    for item in rd {
        let item = item?;
        let name = item.file_name().to_string_lossy().into_owned();
        let meta = item.metadata()?;
        if !meta.is_file() {
            continue;
        }
        let invalid = if let Some(hex) = name.strip_suffix(".nsfs") {
            match u64::from_str_radix(hex, 16) {
                Err(_) => Some("unparseable fingerprint name".to_string()),
                Ok(fp) => match std::fs::read(item.path()) {
                    Err(e) => Some(format!("unreadable: {e}")),
                    Ok(bytes) => validate_stream_bytes(&bytes, fp)
                        .err()
                        .map(|e| e.to_string()),
                },
            }
        } else if name.contains(".tmp") {
            Some("interrupted save".to_string())
        } else {
            continue; // not a stream entry (e.g. the explorer memo)
        };
        entries.push(Entry {
            name,
            path: item.path(),
            bytes: meta.len(),
            invalid,
        });
    }
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    Ok(entries)
}

fn total(entries: &[Entry]) -> u64 {
    entries.iter().map(|e| e.bytes).sum()
}

fn info(dir: &Path) -> Result<(), String> {
    let entries = scan(dir).map_err(|e| e.to_string())?;
    let invalid: Vec<&Entry> = entries.iter().filter(|e| e.invalid.is_some()).collect();
    for e in &entries {
        match &e.invalid {
            None => println!("  {}  {:>10} bytes  ok", e.name, e.bytes),
            Some(why) => println!("  {}  {:>10} bytes  INVALID ({why})", e.name, e.bytes),
        }
    }
    println!(
        "store-info dir={} entries={} bytes={} invalid={}",
        dir.display(),
        entries.len(),
        total(&entries),
        invalid.len(),
    );
    Ok(())
}

fn gc(dir: &Path, max_bytes: Option<u64>) -> Result<(), String> {
    let entries = scan(dir).map_err(|e| e.to_string())?;
    let mut removed_invalid = 0u64;
    let mut keep: Vec<Entry> = Vec::new();
    for e in entries {
        match &e.invalid {
            Some(why) => {
                std::fs::remove_file(&e.path).map_err(|err| format!("{}: {err}", e.name))?;
                println!("  removed {} ({why})", e.name);
                removed_invalid += 1;
            }
            None => keep.push(e),
        }
    }
    // Largest first; the filename (the fingerprint) breaks size ties so
    // the eviction order is a pure function of the store's contents.
    keep.sort_by(|a, b| b.bytes.cmp(&a.bytes).then_with(|| a.name.cmp(&b.name)));
    let mut evicted = 0u64;
    if let Some(budget) = max_bytes {
        while total(&keep) > budget {
            let e = keep.remove(0);
            std::fs::remove_file(&e.path).map_err(|err| format!("{}: {err}", e.name))?;
            println!("  evicted {} ({} bytes)", e.name, e.bytes);
            evicted += 1;
        }
    }
    println!(
        "store-gc dir={} removed_invalid={} evicted={} entries={} bytes={}",
        dir.display(),
        removed_invalid,
        evicted,
        keep.len(),
        total(&keep),
    );
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let spec = CliSpec {
        value_flags: &["dir", "max-bytes"],
        switches: &[],
        repeatable: &[],
    };
    let args = match CliArgs::parse(&raw, &spec) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let cmd = match args.positional() {
        [one] => one.as_str(),
        _ => return usage(),
    };
    let dir = match args.flag("dir") {
        Some(d) => PathBuf::from(d),
        None => nsf_bench::workspace_results_dir().join("store"),
    };
    let max_bytes = match (cmd, args.flag("max-bytes")) {
        (_, None) => None,
        ("gc", Some(v)) => match v.parse::<u64>() {
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!("error: bad --max-bytes value {v:?}");
                return usage();
            }
        },
        // `info --max-bytes` is a contradiction, not a no-op.
        _ => {
            eprintln!("error: --max-bytes only applies to gc");
            return usage();
        }
    };
    let done = match cmd {
        "info" => info(&dir),
        "gc" => gc(&dir, max_bytes),
        _ => return usage(),
    };
    match done {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
