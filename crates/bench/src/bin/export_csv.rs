//! Exports the sweep figures (11, 12, 13 and the depth sweep) as CSV
//! files under `results/`, for replotting.
//!
//! ```sh
//! cargo run --release -p nsf-bench --bin export_csv -- --scale 1
//! ```

use nsf_bench::{
    measure, nsf_config, nsf_lines_config, scale_from_args, segmented_config, PAR_CTX_REGS,
    PAR_FILE_REGS, SEQ_CTX_REGS, SEQ_FILE_REGS,
};
use nsf_core::ReloadPolicy;
use nsf_workloads::synth::{sequential, SeqParams};
use std::fs;
use std::io::Write as _;
use std::path::Path;

fn write_csv(dir: &Path, name: &str, header: &str, rows: &[String]) {
    let path = dir.join(name);
    let mut f = fs::File::create(&path).expect("create CSV");
    writeln!(f, "{header}").unwrap();
    for r in rows {
        writeln!(f, "{r}").unwrap();
    }
    println!("wrote {} ({} rows)", path.display(), rows.len());
}

fn main() {
    let scale = scale_from_args();
    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results/");

    // Figures 11 + 12: file-size sweep.
    let gatesim = nsf_workloads::gatesim::build(scale);
    let gamteb = nsf_workloads::gamteb::build(scale);
    let mut rows = Vec::new();
    for frames in 2..=10u32 {
        let sn = measure(&gatesim, nsf_config(frames * u32::from(SEQ_CTX_REGS)));
        let ss = measure(&gatesim, segmented_config(frames, SEQ_CTX_REGS));
        let pn = measure(&gamteb, nsf_config(frames * u32::from(PAR_CTX_REGS)));
        let ps = measure(&gamteb, segmented_config(frames, PAR_CTX_REGS));
        rows.push(format!(
            "{frames},{:.4},{:.4},{:.4},{:.4},{:.6},{:.6},{:.6},{:.6}",
            sn.occupancy.avg_contexts(),
            ss.occupancy.avg_contexts(),
            pn.occupancy.avg_contexts(),
            ps.occupancy.avg_contexts(),
            sn.reloads_per_instr(),
            ss.reloads_per_instr(),
            pn.reloads_per_instr(),
            ps.reloads_per_instr(),
        ));
    }
    write_csv(
        dir,
        "fig11_fig12_size_sweep.csv",
        "frames,seq_nsf_contexts,seq_seg_contexts,par_nsf_contexts,par_seg_contexts,\
         seq_nsf_reloads_per_instr,seq_seg_reloads_per_instr,\
         par_nsf_reloads_per_instr,par_seg_reloads_per_instr",
        &rows,
    );

    // Figure 13: line-size sweep.
    let mut rows = Vec::new();
    for (parallel, regs, widths) in [
        (false, SEQ_FILE_REGS, vec![1u8, 2, 4, 8, 16]),
        (true, PAR_FILE_REGS, vec![1, 2, 4, 8, 16, 32]),
    ] {
        let suite = if parallel {
            nsf_workloads::parallel_suite(scale)
        } else {
            nsf_workloads::sequential_suite(scale)
        };
        for width in widths {
            let mut cells = Vec::new();
            for policy in [
                ReloadPolicy::WholeLine,
                ReloadPolicy::ValidOnly,
                ReloadPolicy::SingleRegister,
            ] {
                let reports: Vec<_> = suite
                    .iter()
                    .map(|w| measure(w, nsf_lines_config(regs, width, policy)))
                    .collect();
                let agg = nsf_bench::aggregate(&reports);
                cells.push(format!("{:.6}", agg.reloads_per_instr()));
            }
            rows.push(format!(
                "{},{width},{}",
                if parallel { "parallel" } else { "sequential" },
                cells.join(",")
            ));
        }
    }
    write_csv(
        dir,
        "fig13_line_size.csv",
        "suite,regs_per_line,whole_line,valid_only,single_register",
        &rows,
    );

    // Depth sweep (mechanism study).
    let mut rows = Vec::new();
    for depth in [2u32, 4, 6, 8, 12, 16, 24] {
        let w = sequential(SeqParams { depth, fanout: 1, locals: 6 });
        let n = measure(&w, nsf_config(SEQ_FILE_REGS));
        let s = measure(&w, segmented_config(4, SEQ_CTX_REGS));
        rows.push(format!(
            "{depth},{:.4},{:.4},{:.6},{:.6}",
            n.occupancy.avg_contexts(),
            s.occupancy.avg_contexts(),
            n.reloads_per_instr(),
            s.reloads_per_instr(),
        ));
    }
    write_csv(
        dir,
        "depth_sweep.csv",
        "depth,nsf_contexts,seg_contexts,nsf_reloads_per_instr,seg_reloads_per_instr",
        &rows,
    );
}
