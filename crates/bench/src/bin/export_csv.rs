//! Exports the sweep figures (11, 12, 13 and the depth sweep) as CSV
//! files under `results/`, for replotting.
//!
//! ```sh
//! cargo run --release -p nsf-bench --bin export_csv -- --scale 1
//! ```
//!
//! The simulations come from one [`nsf_bench::figures::export_csv`]
//! sweep; only the file writing lives here. Files land in the workspace
//! `results/` directory wherever the binary is invoked from; `--out DIR`
//! redirects them.

use nsf_bench::figures::export_csv;
use nsf_bench::HarnessArgs;
use std::fs;
use std::io::Write as _;

fn main() {
    let args = HarnessArgs::parse();
    let sweep = export_csv::grid(args.scale);
    let reports = nsf_bench::run_with_args(&sweep, &args);

    let dir = args.results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    for csv in export_csv::csvs(&sweep, &reports) {
        let path = dir.join(csv.name);
        let mut f = fs::File::create(&path).expect("create CSV");
        writeln!(f, "{}", csv.header).unwrap();
        for r in &csv.rows {
            writeln!(f, "{r}").unwrap();
        }
        println!("wrote {} ({} rows)", path.display(), csv.rows.len());
    }
}
