//! Figure 14 — register spill and reload overhead as a percentage of
//! program execution time.
//!
//! "Overhead shown for NSF, segmented file with hardware assisted
//! spilling and reloads, and segmented file with software traps for
//! spilling and reloads. All files hold 128 registers." Serial and
//! parallel bars aggregate the respective benchmark suites.
//!
//! Sequential files: NSF 120 regs vs 6 frames × 20 regs (the nearest
//! multiple of the 20-register sequential context). Parallel files:
//! NSF 128 vs 4 frames × 32.

use nsf_bench::{
    aggregate, measure, nsf_config, pct, scale_from_args, segmented_config,
    segmented_software_config, PAR_CTX_REGS, SEQ_CTX_REGS,
};
use nsf_sim::{RunReport, SimConfig};
use nsf_workloads::Workload;

fn overhead(suite: &[Workload], cfg_of: impl Fn() -> SimConfig) -> RunReport {
    let reports: Vec<_> = suite.iter().map(|w| measure(w, cfg_of())).collect();
    aggregate(&reports)
}

fn main() {
    let scale = scale_from_args();
    let seq = nsf_workloads::sequential_suite(scale);
    let par = nsf_workloads::parallel_suite(scale);

    println!("Figure 14: Spill/reload overhead as % of execution time, scale {scale}");
    println!(
        "{:<10} {:>10} {:>14} {:>14}",
        "Suite", "NSF", "Segment (HW)", "Segment (SW)"
    );
    nsf_bench::rule(52);

    let seq_frames = 6;
    let row = |name: &str, nsf: &RunReport, hw: &RunReport, sw: &RunReport| {
        println!(
            "{:<10} {:>10} {:>14} {:>14}",
            name,
            pct(nsf.spill_overhead()),
            pct(hw.spill_overhead()),
            pct(sw.spill_overhead()),
        );
    };

    let nsf = overhead(&seq, || nsf_config(seq_frames * u32::from(SEQ_CTX_REGS)));
    let hw = overhead(&seq, || segmented_config(seq_frames, SEQ_CTX_REGS));
    let sw = overhead(&seq, || segmented_software_config(seq_frames, SEQ_CTX_REGS));
    row("Serial", &nsf, &hw, &sw);

    let nsf = overhead(&par, || nsf_config(128));
    let hw = overhead(&par, || segmented_config(4, PAR_CTX_REGS));
    let sw = overhead(&par, || segmented_software_config(4, PAR_CTX_REGS));
    row("Parallel", &nsf, &hw, &sw);

    nsf_bench::rule(52);
    println!("Paper: serial 0.01% / 8.47% / 15.54%; parallel 12.12% / 26.67% / 38.12%.");
    println!("The NSF eliminates sequential spill overhead entirely and roughly");
    println!("halves it for parallel programs.");
}
