//! Figure 14 — register spill and reload overhead as a percentage of
//! program execution time.
//!
//! "Overhead shown for NSF, segmented file with hardware assisted
//! spilling and reloads, and segmented file with software traps for
//! spilling and reloads. All files hold 128 registers." See
//! [`nsf_bench::figures::fig14`] for the grid.

use nsf_bench::figures::fig14;

fn main() {
    nsf_bench::figure_main(fig14::grid, fig14::render);
}
