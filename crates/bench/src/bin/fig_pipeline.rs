//! Pipeline figure — CPI vs frontend issue width per register file
//! organization, with port-conflict stalls made visible.

use nsf_bench::figures::fig_pipeline;

fn main() {
    nsf_bench::figure_main(fig_pipeline::grid, fig_pipeline::render);
}
