//! Figure 11 — average contexts resident in various sizes of segmented
//! and NSF register files.
//!
//! "Size is shown in context sized frames of 20 registers for sequential
//! programs, 32 registers for parallel code." The representative
//! applications are GateSim (sequential) and Gamteb (parallel), per the
//! paper's §7.2. An N-frame segmented file can hold at most N contexts;
//! the NSF holds "as many active contexts as can share the registers".

use nsf_bench::{
    measure, nsf_config, scale_from_args, segmented_config, PAR_CTX_REGS, SEQ_CTX_REGS,
};

fn main() {
    let scale = scale_from_args();
    let gatesim = nsf_workloads::gatesim::build(scale);
    let gamteb = nsf_workloads::gamteb::build(scale);
    println!("Figure 11: Average resident contexts vs register file size, scale {scale}");
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>14} {:>14}",
        "Frames", "Seq regs", "Seq NSF", "Seq Segment", "Par NSF", "Par Segment"
    );
    nsf_bench::rule(74);
    for frames in 2..=10u32 {
        let seq_regs = frames * u32::from(SEQ_CTX_REGS);
        let par_regs = frames * u32::from(PAR_CTX_REGS);
        let seq_nsf = measure(&gatesim, nsf_config(seq_regs));
        let seq_seg = measure(&gatesim, segmented_config(frames, SEQ_CTX_REGS));
        let par_nsf = measure(&gamteb, nsf_config(par_regs));
        let par_seg = measure(&gamteb, segmented_config(frames, PAR_CTX_REGS));
        println!(
            "{:<8} {:>10} {:>12.2} {:>12.2} {:>14.2} {:>14.2}",
            frames,
            seq_regs,
            seq_nsf.occupancy.avg_contexts(),
            seq_seg.occupancy.avg_contexts(),
            par_nsf.occupancy.avg_contexts(),
            par_seg.occupancy.avg_contexts(),
        );
    }
    nsf_bench::rule(74);
    println!("Paper: N-frame segmented files average ~0.7N resident contexts; the NSF");
    println!("averages ~0.8N on parallel code and more than 2N on sequential code.");
}
