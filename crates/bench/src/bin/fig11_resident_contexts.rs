//! Figure 11 — average contexts resident in various sizes of segmented
//! and NSF register files.
//!
//! "Size is shown in context sized frames of 20 registers for sequential
//! programs, 32 registers for parallel code." GateSim and Gamteb are the
//! representative applications (paper §7.2). See
//! [`nsf_bench::figures::fig11`] for the grid (shared with Figure 12).

use nsf_bench::figures::fig11;

fn main() {
    nsf_bench::figure_main(fig11::grid, fig11::render);
}
