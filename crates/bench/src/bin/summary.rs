//! One-page digest: the paper's conclusion bullets (§9), each measured
//! by this reproduction in a single run.
//!
//! ```sh
//! cargo run --release -p nsf-bench --bin summary -- --scale 1
//! ```

use nsf_bench::figures::summary;

fn main() {
    nsf_bench::figure_main(summary::grid, summary::render);
}
