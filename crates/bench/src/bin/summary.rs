//! One-page digest: the paper's conclusion bullets (§9), each measured
//! by this reproduction in a single run.
//!
//! ```sh
//! cargo run --release -p nsf-bench --bin summary -- --scale 1
//! ```

use nsf_bench::{
    aggregate, measure, nsf_config, scale_from_args, segmented_config,
    segmented_software_config, PAR_CTX_REGS, PAR_FILE_REGS, SEQ_CTX_REGS, SEQ_FILE_REGS,
};
use nsf_vlsi::{AreaModel, Geometry, Ports, Tech, TimingModel};

fn main() {
    let scale = scale_from_args();
    println!("The Named-State Register File — reproduction digest (scale {scale})");
    println!("Paper claims (§9) vs this repository's measurements:\n");

    let seq = nsf_workloads::sequential_suite(scale);
    let par = nsf_workloads::parallel_suite(scale);

    // Claim 1: more active data than a conventional file of the same size.
    let mut ratios = Vec::new();
    for w in seq.iter().chain(&par) {
        let (regs, frames, fr) = if w.parallel {
            (PAR_FILE_REGS, 4, PAR_CTX_REGS)
        } else {
            (SEQ_FILE_REGS, 4, SEQ_CTX_REGS)
        };
        let n = measure(w, nsf_config(regs));
        let s = measure(w, segmented_config(frames, fr));
        if s.utilization() > 0.0 {
            ratios.push(n.utilization() / s.utilization());
        }
    }
    let max_ratio = ratios.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "1. \"The NSF holds 30% to 200% more active data\"\n   -> measured: up to {:.0}% more ({} benchmarks)\n",
        (max_ratio - 1.0) * 100.0,
        ratios.len()
    );

    // Claim 2: more concurrent contexts (sequential headline: 2x).
    let gs = nsf_workloads::gatesim::build(scale);
    let n = measure(&gs, nsf_config(SEQ_FILE_REGS));
    let s = measure(&gs, segmented_config(4, SEQ_CTX_REGS));
    println!(
        "2. \"Holds twice as many procedure call frames as a conventional file\"\n   -> measured (GateSim, 80 regs): NSF {:.1} vs segmented {:.1} resident contexts\n",
        n.occupancy.avg_contexts(),
        s.occupancy.avg_contexts()
    );

    // Claim 3: call chains held with ~zero spilling.
    println!(
        "3. \"Can hold the entire call chain, spilling at 1e-4 the rate\"\n   -> measured (GateSim): NSF {} reloads vs segmented {} ({} instructions)\n",
        n.regfile.regs_reloaded, s.regfile.regs_reloaded, n.instructions
    );

    // Claim 4: execution overhead (Figure 14).
    let seq_frames = 6u32;
    let agg = |rs: Vec<nsf_sim::RunReport>| aggregate(&rs);
    let nsf_ser = agg(seq.iter().map(|w| measure(w, nsf_config(seq_frames * u32::from(SEQ_CTX_REGS)))).collect());
    let hw_ser = agg(seq.iter().map(|w| measure(w, segmented_config(seq_frames, SEQ_CTX_REGS))).collect());
    let sw_ser = agg(seq.iter().map(|w| measure(w, segmented_software_config(seq_frames, SEQ_CTX_REGS))).collect());
    let nsf_par = agg(par.iter().map(|w| measure(w, nsf_config(128))).collect());
    let hw_par = agg(par.iter().map(|w| measure(w, segmented_config(4, PAR_CTX_REGS))).collect());
    let sw_par = agg(par.iter().map(|w| measure(w, segmented_software_config(4, PAR_CTX_REGS))).collect());
    println!(
        "4. \"Speeds execution by eliminating register spills and reloads\"\n   -> overhead serial:   NSF {:.2}%  seg-HW {:.2}%  seg-SW {:.2}%  (paper 0.01/8.47/15.54)\n   -> overhead parallel: NSF {:.2}%  seg-HW {:.2}%  seg-SW {:.2}%  (paper 12.1/26.7/38.1)\n",
        nsf_ser.spill_overhead() * 100.0,
        hw_ser.spill_overhead() * 100.0,
        sw_ser.spill_overhead() * 100.0,
        nsf_par.spill_overhead() * 100.0,
        hw_par.spill_overhead() * 100.0,
        sw_par.spill_overhead() * 100.0,
    );

    // Claim 5 & 6: implementation cost.
    let t = TimingModel::new(Tech::cmos_1p2um());
    let a = AreaModel::new(Tech::cmos_1p2um());
    println!(
        "5. \"Access time is only 5% greater\"\n   -> measured: +{:.1}% (32x128), +{:.1}% (64x64)\n",
        t.nsf_overhead(Geometry::g32x128()) * 100.0,
        t.nsf_overhead(Geometry::g64x64()) * 100.0,
    );
    println!(
        "6. \"16% to 50% more chip area ... only 1% to 5% of a processor\"\n   -> measured: +{:.0}% to +{:.0}% file area; {:.1}% of a die at a 10% file share",
        a.nsf_overhead(Geometry::g64x64(), Ports::six()) * 100.0,
        a.nsf_overhead(Geometry::g32x128(), Ports::three()) * 100.0,
        a.processor_overhead(Geometry::g32x128(), Ports::three(), 0.10) * 100.0,
    );
}
