//! Simulator throughput report: wall-clock time and simulated-event rate
//! for every figure grid.
//!
//! ```sh
//! cargo run --release -p nsf-bench --bin perf_report -- --scale 1
//! ```
//!
//! This measures the *simulator*, not the modeled machine: each figure's
//! grid is built and run exactly as its binary would (render excluded, so
//! nothing is printed or written per figure), and the elapsed wall time is
//! divided into the total instructions simulated. The numbers land in
//! `results/BENCH_regfile.json` and a table on stdout; EXPERIMENTS.md
//! records the `--scale 1` history. Wall-clock timing is inherently
//! machine-dependent — these numbers never feed a figure, so the
//! determinism rule for results paths does not apply here.

use nsf_bench::figures::{
    ablations, depth_sweep, export_csv, fig09, fig10, fig11, fig12, fig13, fig14, related_work,
    summary, table1,
};
use nsf_bench::{HarnessArgs, Sweep};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Instant;

/// Builds one figure's (workload, config) point set at a given scale.
type GridFn = fn(u32) -> Sweep;

/// Every data-driven figure grid, in binary name order.
const GRIDS: &[(&str, GridFn)] = &[
    ("ablations", ablations::grid),
    ("depth_sweep", depth_sweep::grid),
    ("export_csv", export_csv::grid),
    ("fig09_utilization", fig09::grid),
    ("fig10_reload_traffic", fig10::grid),
    ("fig11_resident_contexts", fig11::grid),
    ("fig12_reload_vs_size", fig12::grid),
    ("fig13_line_size", fig13::grid),
    ("fig14_overhead", fig14::grid),
    ("related_work", related_work::grid),
    ("summary", summary::grid),
    ("table1", table1::grid),
];

struct Row {
    name: &'static str,
    points: usize,
    events: u64,
    wall_ns: u128,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.events as f64 * 1e9 / self.wall_ns as f64
        }
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let mut rows = Vec::new();

    println!(
        "Simulator throughput (scale {}, {} threads)",
        args.scale, args.threads
    );
    println!(
        "{:<26} {:>7} {:>14} {:>10} {:>14}",
        "Grid", "Points", "Instructions", "Wall ms", "Instr/sec"
    );
    nsf_bench::rule(74);
    for &(name, grid) in GRIDS {
        let t = Instant::now();
        let sweep = grid(args.scale);
        let reports = sweep.run(args.threads);
        let wall_ns = t.elapsed().as_nanos();
        let events: u64 = reports.iter().map(|r| r.instructions).sum();
        let row = Row {
            name,
            points: reports.len(),
            events,
            wall_ns,
        };
        println!(
            "{:<26} {:>7} {:>14} {:>10.1} {:>14.0}",
            row.name,
            row.points,
            row.events,
            row.wall_ns as f64 / 1e6,
            row.events_per_sec(),
        );
        rows.push(row);
    }
    nsf_bench::rule(74);
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    let total_ns: u128 = rows.iter().map(|r| r.wall_ns).sum();
    println!(
        "{:<26} {:>7} {:>14} {:>10.1} {:>14.0}",
        "total",
        rows.iter().map(|r| r.points).sum::<usize>(),
        total_events,
        total_ns as f64 / 1e6,
        if total_ns == 0 {
            0.0
        } else {
            total_events as f64 * 1e9 / total_ns as f64
        },
    );

    let mut json = String::from("{\n");
    writeln!(json, "  \"scale\": {},", args.scale).unwrap();
    writeln!(json, "  \"threads\": {},", args.threads).unwrap();
    json.push_str("  \"grids\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"config\": \"scale {}\", \
             \"events\": {}, \"wall_ns\": {}, \"events_per_sec\": {:.0}}}{}",
            r.name,
            args.scale,
            r.events,
            r.wall_ns,
            r.events_per_sec(),
            if i + 1 < rows.len() { "," } else { "" },
        )
        .unwrap();
    }
    json.push_str("  ]\n}\n");

    let dir = Path::new("results");
    fs::create_dir_all(dir).expect("create results/");
    let path = dir.join("BENCH_regfile.json");
    fs::write(&path, json).expect("write BENCH_regfile.json");
    println!("\nwrote {}", path.display());
}
