//! Simulator throughput report: wall-clock time and simulated-event rate
//! for every figure grid, plus the trace-replay path's throughput and
//! its speedup over live simulation.
//!
//! ```sh
//! cargo run --release -p nsf-bench --bin perf_report -- --scale 1
//! ```
//!
//! This measures the *simulator*, not the modeled machine: each figure's
//! grid is built and run exactly as its binary would (render excluded, so
//! nothing is printed or written per figure), and the elapsed wall time is
//! divided into the total instructions simulated. Each grid is then
//! re-run through the lane-batched core and the frontend-cached core
//! (`Sweep::run_cached`), asserting bit-identical reports and recording
//! the frontend-vs-engine time split and cache hit rate. A second section
//! captures the Figure 12 workloads as `.nsftrace` streams and re-sweeps
//! the figure's whole configuration grid by *replay* — the design-space
//! shortcut `trace_tool` offers — reporting events/sec through each
//! engine family and the replay-vs-live speedup. A third section runs
//! the sibling `nsf-explore` binary over its default design-space spec
//! (fresh ledger each time) and records explorer throughput in
//! configurations/sec plus the online Pareto prune rate; it is marked
//! unavailable when that binary is not built. The numbers land in
//! `results/BENCH_regfile.json` (override the directory with `--out`)
//! and a table on stdout; EXPERIMENTS.md records the `--scale 1`
//! history. Wall-clock timing is inherently machine-dependent — these
//! numbers never feed a figure, so the determinism rule for results
//! paths does not apply here.

use nsf_bench::figures::{
    ablations, depth_sweep, export_csv, fig09, fig10, fig11, fig12, fig13, fig14, fig_pipeline,
    related_work, summary, table1,
};
use nsf_bench::{CliArgs, CliError, CliSpec, FrontendCacheStats, HarnessArgs, Sweep};
use nsf_sim::SimConfig;
use nsf_trace::{capture, parse_engine, replay_events, StreamStore, Trace};
use std::fmt::Write as _;
use std::fs;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Builds one figure's (workload, config) point set at a given scale.
type GridFn = fn(u32) -> Sweep;

/// Every data-driven figure grid, in binary name order.
const GRIDS: &[(&str, GridFn)] = &[
    ("ablations", ablations::grid),
    ("depth_sweep", depth_sweep::grid),
    ("export_csv", export_csv::grid),
    ("fig09_utilization", fig09::grid),
    ("fig10_reload_traffic", fig10::grid),
    ("fig11_resident_contexts", fig11::grid),
    ("fig12_reload_vs_size", fig12::grid),
    ("fig13_line_size", fig13::grid),
    ("fig14_overhead", fig14::grid),
    ("fig_pipeline", fig_pipeline::grid),
    ("related_work", related_work::grid),
    ("summary", summary::grid),
    ("table1", table1::grid),
];

/// Engine families the captured traces are replayed through, per
/// workload class (specs for `nsf_trace::parse_engine`).
const SEQ_ENGINES: &[&str] = &[
    "nsf:80",
    "segmented:8x20",
    "segmented-sw:8x20",
    "windowed:20",
    "conventional:32",
];
const PAR_ENGINES: &[&str] = &[
    "nsf:128",
    "segmented:4x32",
    "segmented-sw:4x32",
    "windowed:32",
    "conventional:32",
];

/// Simulation-core throughput (instr/sec, `Sweep::run` only, grid build
/// excluded) per grid at `--scale 1 --threads 1`, measured at the
/// pre-devirtualization HEAD on the reference container as the median of
/// five runs interleaved with the de-virtualized build (interleaving
/// cancels host-load drift). The `sim_core` section reports current
/// throughput against these so the speedup of the flat-memory +
/// static-dispatch core is recorded in `results/BENCH_regfile.json`
/// alongside the absolute numbers. Wall clocks are machine-dependent;
/// the ratio is only quoted for runs that match the baseline protocol
/// (scale 1, one thread).
const SIM_CORE_BASELINE: &[(&str, f64)] = &[
    ("ablations", 10_672_498.0),
    ("depth_sweep", 8_714_106.0),
    ("export_csv", 12_716_479.0),
    ("fig09_utilization", 14_028_991.0),
    ("fig10_reload_traffic", 15_558_061.0),
    ("fig11_resident_contexts", 16_458_353.0),
    ("fig12_reload_vs_size", 15_309_296.0),
    ("fig13_line_size", 13_071_597.0),
    ("fig14_overhead", 16_154_492.0),
    ("related_work", 18_143_733.0),
    ("summary", 16_537_927.0),
    ("table1", 14_563_774.0),
];

struct Row {
    name: &'static str,
    points: usize,
    events: u64,
    wall_ns: u128,
    run_ns: u128,
    /// Wall time of the same grid through `Sweep::run_lanes`.
    lanes_run_ns: u128,
    /// Wall time of the same grid through `Sweep::run_cached`.
    cache_run_ns: u128,
    /// Frontend-vs-engine split and hit rate of the cached run.
    cache: FrontendCacheStats,
    /// Wall time of the grid through `Sweep::run_stored` against an
    /// empty store (captures + persists every stream).
    store_cold_ns: u128,
    /// Wall time of the same run again — every stream served warm.
    store_warm_ns: u128,
    /// Counters of the warm pass (hits, served points).
    store_warm: FrontendCacheStats,
}

impl Row {
    fn events_per_sec(&self) -> f64 {
        rate(self.events, self.wall_ns)
    }

    /// Instr/sec through the simulation core alone (grid build excluded).
    fn sim_events_per_sec(&self) -> f64 {
        rate(self.events, self.run_ns)
    }

    /// Instr/sec through the lane-batched core.
    fn lanes_events_per_sec(&self) -> f64 {
        rate(self.events, self.lanes_run_ns)
    }

    /// Lane-batched speedup over the serial core on this run.
    fn lanes_speedup(&self) -> f64 {
        if self.lanes_run_ns == 0 {
            0.0
        } else {
            self.run_ns as f64 / self.lanes_run_ns as f64
        }
    }

    /// Instr/sec through the frontend-cached core.
    fn cache_events_per_sec(&self) -> f64 {
        rate(self.events, self.cache_run_ns)
    }

    /// Frontend-cache speedup over the serial core on this run.
    fn cache_speedup(&self) -> f64 {
        if self.cache_run_ns == 0 {
            0.0
        } else {
            self.run_ns as f64 / self.cache_run_ns as f64
        }
    }

    /// Warm-store speedup over the cold (capturing) pass.
    fn store_speedup(&self) -> f64 {
        if self.store_warm_ns == 0 {
            0.0
        } else {
            self.store_cold_ns as f64 / self.store_warm_ns as f64
        }
    }

    fn baseline(&self) -> Option<f64> {
        SIM_CORE_BASELINE
            .iter()
            .find(|&&(n, _)| n == self.name)
            .map(|&(_, r)| r)
    }
}

fn rate(events: u64, wall_ns: u128) -> f64 {
    if wall_ns == 0 {
        0.0
    } else {
        events as f64 * 1e9 / wall_ns as f64
    }
}

/// One engine-family replay measurement.
struct EngineRow {
    workload: String,
    engine: &'static str,
    events: u64,
    wall_ns: u128,
}

/// The replay-vs-live measurement over the Figure 12 grid.
struct ReplaySection {
    live_wall_ns: u128,
    capture_wall_ns: u128,
    replay_wall_ns: u128,
    replayed_points: usize,
    engines: Vec<EngineRow>,
}

impl ReplaySection {
    fn speedup(&self) -> f64 {
        if self.replay_wall_ns == 0 {
            0.0
        } else {
            self.live_wall_ns as f64 / self.replay_wall_ns as f64
        }
    }
}

/// One completed `nsf-explore` run, parsed from its `explore-summary`
/// stdout line (the stable key=value summary the explorer prints).
struct ExploreStats {
    points: u64,
    evaluated: u64,
    checkpoints: u64,
    pruned: u64,
    front: u64,
    elapsed_ms: u64,
    configs_per_sec: f64,
}

impl ExploreStats {
    /// Fraction of evaluated configurations the online Pareto prune
    /// discarded as dominated.
    fn prune_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.pruned as f64 / self.points as f64
        }
    }

    fn parse(line: &str) -> Option<ExploreStats> {
        let field = |key: &str| {
            line.split_whitespace()
                .find_map(|tok| tok.strip_prefix(key)?.strip_prefix('=').map(str::to_string))
        };
        Some(ExploreStats {
            points: field("points")?.parse().ok()?,
            evaluated: field("evaluated")?.parse().ok()?,
            checkpoints: field("checkpoints")?.parse().ok()?,
            pruned: field("pruned")?.parse().ok()?,
            front: field("front")?.parse().ok()?,
            elapsed_ms: field("elapsed_ms")?.parse().ok()?,
            configs_per_sec: field("configs_per_sec")?.parse().ok()?,
        })
    }
}

/// Runs the sibling `nsf-explore` binary over its default spec and
/// parses the summary line. `nsf-explore` depends on this crate, so the
/// report cannot link it as a library — it drives the built binary next
/// to its own executable instead, and degrades to `None` (section marked
/// unavailable) when that binary has not been built.
fn explore_section(args: &HarnessArgs) -> Option<ExploreStats> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe
        .parent()?
        .join(format!("nsf-explore{}", std::env::consts::EXE_SUFFIX));
    if !bin.exists() {
        return None;
    }
    // A scratch ledger directory, wiped before the run so the explorer
    // never resumes a previous report's ledger (resume would evaluate
    // zero points and time nothing).
    let out = std::env::temp_dir().join(format!("nsf-explore-perf-{}", std::process::id()));
    let _ = fs::remove_dir_all(&out);
    let output = std::process::Command::new(&bin)
        .args(["--scale", &args.scale.to_string()])
        .args(["--threads", &args.threads.to_string()])
        .args(["--lanes", &args.lanes.to_string()])
        .arg("--quiet")
        .arg("--out")
        .arg(&out)
        .output()
        .ok()?;
    let _ = fs::remove_dir_all(&out);
    if !output.status.success() {
        return None;
    }
    let stdout = String::from_utf8_lossy(&output.stdout);
    let line = stdout.lines().find(|l| l.starts_with("explore-summary "))?;
    ExploreStats::parse(line)
}

/// Replays every point of the Figure 12 sweep from recorded traces,
/// fanning across `threads` workers (same pool shape as `Sweep::run`).
fn replay_grid(sweep: &Sweep, traces: &[Trace], threads: usize) -> usize {
    let replay_point = |p: &nsf_bench::SweepPoint| {
        replay_events(&traces[p.workload].events, &p.cfg)
            .unwrap_or_else(|e| panic!("grid replay failed: {e}"))
    };
    if threads <= 1 {
        for p in &sweep.points {
            replay_point(p);
        }
    } else {
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads.min(sweep.points.len()) {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = sweep.points.get(i) else { break };
                    replay_point(p);
                });
            }
        });
    }
    sweep.points.len()
}

/// Captures the Figure 12 workloads and measures the replay path:
/// per-engine throughput and the grid-sweep speedup over `live_wall_ns`
/// (the live Figure 12 run timed in the main loop).
fn replay_section(args: &HarnessArgs, live_wall_ns: u128) -> ReplaySection {
    let workloads = [
        nsf_workloads::gatesim::build(args.scale),
        nsf_workloads::gamteb::build(args.scale),
    ];
    let t = Instant::now();
    let traces: Vec<Trace> = workloads
        .iter()
        .map(|w| {
            let spec = nsf_trace::default_engine_spec(w.parallel);
            let cfg = SimConfig::with_regfile(parse_engine(spec).expect("default spec"));
            let (trace, _) = capture(w, cfg, spec, args.scale)
                .unwrap_or_else(|e| panic!("{} capture failed: {e}", w.name));
            trace
        })
        .collect();
    let capture_wall_ns = t.elapsed().as_nanos();

    // The Figure 12 sweep again, but replayed from the traces instead of
    // re-running compiler + runtime + scheduler per configuration.
    let sweep = fig12::grid(args.scale);
    let t = Instant::now();
    let replayed_points = replay_grid(&sweep, &traces, args.threads);
    let replay_wall_ns = t.elapsed().as_nanos();

    // Per-engine-family throughput, measured serially.
    let mut engines = Vec::new();
    for trace in &traces {
        let specs = if trace.meta.workload == "GateSim" {
            SEQ_ENGINES
        } else {
            PAR_ENGINES
        };
        for &spec in specs {
            let cfg = SimConfig::with_regfile(parse_engine(spec).expect("engine spec"));
            let t = Instant::now();
            let r = replay_events(&trace.events, &cfg)
                .unwrap_or_else(|e| panic!("{spec} replay failed: {e}"));
            engines.push(EngineRow {
                workload: trace.meta.workload.clone(),
                engine: spec,
                events: r.events,
                wall_ns: t.elapsed().as_nanos(),
            });
        }
    }
    ReplaySection {
        live_wall_ns,
        capture_wall_ns,
        replay_wall_ns,
        replayed_points,
        engines,
    }
}

/// Strict argument parsing: unlike the figure binaries (which share a
/// flag set through [`HarnessArgs`] and ignore strays by design), a typo
/// here silently times the wrong experiment — reject it with usage.
fn parse_args() -> Result<HarnessArgs, CliError> {
    const SPEC: CliSpec = CliSpec {
        value_flags: &["scale", "threads", "lanes", "out"],
        switches: &[
            "quiet",
            "frontend-cache",
            "no-frontend-cache",
            "store",
            "no-store",
        ],
        repeatable: &[],
    };
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = CliArgs::parse(&raw, &SPEC)?;
    // Both paths are always *measured* here (the cached and store
    // columns are the point of the report); the switches are accepted so
    // one wrapper flag set drives every binary, and conflicts still
    // error.
    if args.switch("frontend-cache") && args.switch("no-frontend-cache") {
        return Err(CliError::Conflict {
            a: "frontend-cache".into(),
            b: "no-frontend-cache".into(),
        });
    }
    if args.switch("store") && args.switch("no-store") {
        return Err(CliError::Conflict {
            a: "store".into(),
            b: "no-store".into(),
        });
    }
    let defaults = HarnessArgs::default();
    Ok(HarnessArgs {
        scale: args.parsed_or("scale", 1u32)?,
        threads: args.parsed_or("threads", defaults.threads)?.max(1),
        lanes: args.parsed_or("lanes", defaults.lanes)?.max(1),
        frontend_cache: !args.switch("no-frontend-cache"),
        store: !args.switch("no-store"),
        quiet: args.switch("quiet"),
        out: args.flag("out").map(str::to_string),
    })
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!(
                "perf_report: {e}\nusage: perf_report [--scale N] [--threads N] [--lanes N] \
                 [--frontend-cache | --no-frontend-cache] [--store | --no-store] \
                 [--out DIR] [--quiet]"
            );
            std::process::exit(64);
        }
    };
    let mut rows = Vec::new();
    // A scratch stream store per grid, wiped before and after the run so
    // the cold pass is genuinely cold and nothing leaks across reports.
    let store_root = std::env::temp_dir().join(format!("nsf-store-perf-{}", std::process::id()));
    let _ = fs::remove_dir_all(&store_root);

    println!(
        "Simulator throughput (scale {}, {} threads)",
        args.scale, args.threads
    );
    println!(
        "{:<26} {:>7} {:>14} {:>10} {:>14}",
        "Grid", "Points", "Instructions", "Wall ms", "Instr/sec"
    );
    nsf_bench::rule(74);
    for &(name, grid) in GRIDS {
        let t = Instant::now();
        let sweep = grid(args.scale);
        let build_ns = t.elapsed().as_nanos();
        let t = Instant::now();
        let reports = sweep.run(args.threads);
        let run_ns = t.elapsed().as_nanos();
        let t = Instant::now();
        let lane_reports = sweep.run_lanes(args.threads, args.lanes);
        let lanes_run_ns = t.elapsed().as_nanos();
        assert_eq!(reports, lane_reports, "{name}: lane batching must be exact");
        let t = Instant::now();
        let (cache_reports, cache) = sweep.run_cached_stats(args.threads, args.lanes);
        let cache_run_ns = t.elapsed().as_nanos();
        assert_eq!(
            reports, cache_reports,
            "{name}: the frontend cache must be exact"
        );
        let grid_store = StreamStore::open(store_root.join(name));
        let t = Instant::now();
        let (cold_reports, _) = sweep.run_stored_stats(args.threads, args.lanes, Some(&grid_store));
        let store_cold_ns = t.elapsed().as_nanos();
        assert_eq!(reports, cold_reports, "{name}: store-cold must be exact");
        let t = Instant::now();
        let (warm_reports, store_warm) =
            sweep.run_stored_stats(args.threads, args.lanes, Some(&grid_store));
        let store_warm_ns = t.elapsed().as_nanos();
        assert_eq!(reports, warm_reports, "{name}: store-warm must be exact");
        let events: u64 = reports.iter().map(|r| r.instructions).sum();
        let row = Row {
            name,
            points: reports.len(),
            events,
            wall_ns: build_ns + run_ns,
            run_ns,
            lanes_run_ns,
            cache_run_ns,
            cache,
            store_cold_ns,
            store_warm_ns,
            store_warm,
        };
        println!(
            "{:<26} {:>7} {:>14} {:>10.1} {:>14.0}",
            row.name,
            row.points,
            row.events,
            row.wall_ns as f64 / 1e6,
            row.events_per_sec(),
        );
        rows.push(row);
    }
    nsf_bench::rule(74);
    let total_events: u64 = rows.iter().map(|r| r.events).sum();
    let total_ns: u128 = rows.iter().map(|r| r.wall_ns).sum();
    println!(
        "{:<26} {:>7} {:>14} {:>10.1} {:>14.0}",
        "total",
        rows.iter().map(|r| r.points).sum::<usize>(),
        total_events,
        total_ns as f64 / 1e6,
        rate(total_events, total_ns),
    );

    // The simulation core alone: grid build (compiler + workload
    // generation) excluded, so this isolates the fetch/execute/register/
    // memory loop the devirtualized dispatch and flat page table serve.
    let compare = args.scale == 1 && args.threads == 1;
    println!(
        "\nSimulation core (sweep.run only, grid build excluded; lanes = {})",
        args.lanes
    );
    println!(
        "{:<26} {:>10} {:>14} {:>14} {:>8} {:>10} {:>10}",
        "Grid", "Run ms", "Instr/sec", "Baseline", "Speedup", "Lanes ms", "Lanes spd"
    );
    nsf_bench::rule(98);
    for r in &rows {
        let base = if compare { r.baseline() } else { None };
        println!(
            "{:<26} {:>10.1} {:>14.0} {:>14} {:>8} {:>10.1} {:>9.2}x",
            r.name,
            r.run_ns as f64 / 1e6,
            r.sim_events_per_sec(),
            base.map_or_else(|| "-".into(), |b| format!("{b:.0}")),
            base.map_or_else(
                || "-".into(),
                |b| format!("{:.2}x", r.sim_events_per_sec() / b)
            ),
            r.lanes_run_ns as f64 / 1e6,
            r.lanes_speedup(),
        );
    }
    nsf_bench::rule(98);

    // Frontend-vs-engine split of the cached run: frontend ms covers the
    // per-group capture (workload generation + fetch/decode/schedule once
    // per frontend) plus uncacheable singleton points run live; engine ms
    // is replay only — the register-file/memory timing model fed from the
    // recorded event stream. Hit rate is replayed points / points.
    println!(
        "\nFrontend cache (sweep.run_cached, lanes = {})",
        args.lanes
    );
    println!(
        "{:<26} {:>10} {:>12} {:>10} {:>9} {:>10}",
        "Grid", "Cached ms", "Frontend ms", "Engine ms", "Hit rate", "Cache spd"
    );
    nsf_bench::rule(82);
    for r in &rows {
        println!(
            "{:<26} {:>10.1} {:>12.1} {:>10.1} {:>8.0}% {:>9.2}x",
            r.name,
            r.cache_run_ns as f64 / 1e6,
            r.cache.frontend_ns as f64 / 1e6,
            r.cache.engine_ns as f64 / 1e6,
            r.cache.hit_rate() * 100.0,
            r.cache_speedup(),
        );
    }
    nsf_bench::rule(82);

    // Cold-vs-warm persistent store: the cold pass captures and persists
    // every capturable stream (so it pays capture encoding on top of the
    // live frontend); the warm pass replays everything — including
    // singleton and narrow groups — from the store. Reports were
    // asserted bit-identical to the serial sweep on both passes.
    println!("\nStream store (sweep.run_stored, cold vs warm)");
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>6} {:>7} {:>10}",
        "Grid", "Cold ms", "Warm ms", "Hit rate", "Hits", "Misses", "Store spd"
    );
    nsf_bench::rule(84);
    let mut warm_hit_grids = 0u64;
    let mut max_store_speedup = 0f64;
    for r in &rows {
        if r.store_warm.store_hits > 0 {
            warm_hit_grids += 1;
        }
        max_store_speedup = max_store_speedup.max(r.store_speedup());
        println!(
            "{:<26} {:>10.1} {:>10.1} {:>8.0}% {:>6} {:>7} {:>9.2}x",
            r.name,
            r.store_cold_ns as f64 / 1e6,
            r.store_warm_ns as f64 / 1e6,
            r.store_warm.store_hit_rate() * 100.0,
            r.store_warm.store_hits,
            r.store_warm.store_misses,
            r.store_speedup(),
        );
    }
    nsf_bench::rule(84);
    println!(
        "store-summary grids={} grids_with_warm_hits={} max_speedup={:.2}",
        rows.len(),
        warm_hit_grids,
        max_store_speedup,
    );
    let _ = fs::remove_dir_all(&store_root);

    let live_fig12_ns = rows
        .iter()
        .find(|r| r.name == "fig12_reload_vs_size")
        .expect("fig12 is in GRIDS")
        .wall_ns;
    let replay = replay_section(&args, live_fig12_ns);

    println!("\nTrace replay throughput (events/sec through each engine)");
    println!(
        "{:<10} {:<18} {:>12} {:>10} {:>14}",
        "Trace", "Engine", "Events", "Wall ms", "Events/sec"
    );
    nsf_bench::rule(68);
    for e in &replay.engines {
        println!(
            "{:<10} {:<18} {:>12} {:>10.1} {:>14.0}",
            e.workload,
            e.engine,
            e.events,
            e.wall_ns as f64 / 1e6,
            rate(e.events, e.wall_ns),
        );
    }
    nsf_bench::rule(68);
    println!(
        "Fig. 12 grid ({} points): live {:.1} ms, capture {:.1} ms, replay {:.1} ms \
         -> replay speedup {:.1}x",
        replay.replayed_points,
        replay.live_wall_ns as f64 / 1e6,
        replay.capture_wall_ns as f64 / 1e6,
        replay.replay_wall_ns as f64 / 1e6,
        replay.speedup(),
    );

    let explore = explore_section(&args);
    println!("\nDesign-space explorer (nsf-explore default spec, fresh ledger)");
    match &explore {
        Some(e) => println!(
            "{} points, {} evaluated, {} checkpoints: {:.1} configs/sec, \
             pruned {} ({:.0}%) -> front {} ({} ms)",
            e.points,
            e.evaluated,
            e.checkpoints,
            e.configs_per_sec,
            e.pruned,
            e.prune_rate() * 100.0,
            e.front,
            e.elapsed_ms,
        ),
        None => println!("unavailable (nsf-explore binary not built alongside perf_report)"),
    }

    let mut json = String::from("{\n");
    writeln!(json, "  \"scale\": {},", args.scale).unwrap();
    writeln!(json, "  \"threads\": {},", args.threads).unwrap();
    writeln!(json, "  \"lanes\": {},", args.lanes).unwrap();
    json.push_str("  \"grids\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"workload\": \"{}\", \"config\": \"scale {}\", \
             \"events\": {}, \"wall_ns\": {}, \"events_per_sec\": {:.0}}}{}",
            r.name,
            args.scale,
            r.events,
            r.wall_ns,
            r.events_per_sec(),
            if i + 1 < rows.len() { "," } else { "" },
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    json.push_str("  \"sim_core\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let base = if compare { r.baseline() } else { None };
        let (base_s, speedup_s) = match base {
            Some(b) => (
                format!("{b:.0}"),
                format!("{:.2}", r.sim_events_per_sec() / b),
            ),
            None => ("null".into(), "null".into()),
        };
        writeln!(
            json,
            "    {{\"grid\": \"{}\", \"events\": {}, \"run_wall_ns\": {}, \
             \"instr_per_sec\": {:.0}, \"baseline_instr_per_sec\": {}, \
             \"speedup\": {}, \"lanes_run_wall_ns\": {}, \
             \"lanes_instr_per_sec\": {:.0}, \"lanes_speedup\": {:.2}, \
             \"cache_run_wall_ns\": {}, \"cache_instr_per_sec\": {:.0}, \
             \"cache_frontend_ns\": {}, \"cache_engine_ns\": {}, \
             \"cache_hit_rate\": {:.3}, \"frontend_cache_speedup\": {:.2}}}{}",
            r.name,
            r.events,
            r.run_ns,
            r.sim_events_per_sec(),
            base_s,
            speedup_s,
            r.lanes_run_ns,
            r.lanes_events_per_sec(),
            r.lanes_speedup(),
            r.cache_run_ns,
            r.cache_events_per_sec(),
            r.cache.frontend_ns,
            r.cache.engine_ns,
            r.cache.hit_rate(),
            r.cache_speedup(),
            if i + 1 < rows.len() { "," } else { "" },
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    json.push_str("  \"store\": [\n");
    for (i, r) in rows.iter().enumerate() {
        writeln!(
            json,
            "    {{\"grid\": \"{}\", \"cold_wall_ns\": {}, \"warm_wall_ns\": {}, \
             \"store_speedup\": {:.2}, \"warm_hit_rate\": {:.3}, \
             \"store_hits\": {}, \"store_misses\": {}}}{}",
            r.name,
            r.store_cold_ns,
            r.store_warm_ns,
            r.store_speedup(),
            r.store_warm.store_hit_rate(),
            r.store_warm.store_hits,
            r.store_warm.store_misses,
            if i + 1 < rows.len() { "," } else { "" },
        )
        .unwrap();
    }
    json.push_str("  ],\n");
    json.push_str("  \"replay\": {\n");
    writeln!(json, "    \"grid\": \"fig12_reload_vs_size\",").unwrap();
    writeln!(json, "    \"points\": {},", replay.replayed_points).unwrap();
    writeln!(json, "    \"live_wall_ns\": {},", replay.live_wall_ns).unwrap();
    writeln!(json, "    \"capture_wall_ns\": {},", replay.capture_wall_ns).unwrap();
    writeln!(json, "    \"replay_wall_ns\": {},", replay.replay_wall_ns).unwrap();
    writeln!(json, "    \"speedup\": {:.2},", replay.speedup()).unwrap();
    json.push_str("    \"engines\": [\n");
    for (i, e) in replay.engines.iter().enumerate() {
        writeln!(
            json,
            "      {{\"workload\": \"{}\", \"engine\": \"{}\", \"events\": {}, \
             \"wall_ns\": {}, \"events_per_sec\": {:.0}}}{}",
            e.workload,
            e.engine,
            e.events,
            e.wall_ns,
            rate(e.events, e.wall_ns),
            if i + 1 < replay.engines.len() {
                ","
            } else {
                ""
            },
        )
        .unwrap();
    }
    json.push_str("    ]\n  },\n");
    json.push_str("  \"explore\": ");
    match &explore {
        Some(e) => {
            json.push_str("{\n");
            writeln!(json, "    \"available\": true,").unwrap();
            writeln!(json, "    \"points\": {},", e.points).unwrap();
            writeln!(json, "    \"evaluated\": {},", e.evaluated).unwrap();
            writeln!(json, "    \"checkpoints\": {},", e.checkpoints).unwrap();
            writeln!(json, "    \"pruned\": {},", e.pruned).unwrap();
            writeln!(json, "    \"front\": {},", e.front).unwrap();
            writeln!(json, "    \"elapsed_ms\": {},", e.elapsed_ms).unwrap();
            writeln!(json, "    \"configs_per_sec\": {:.1},", e.configs_per_sec).unwrap();
            writeln!(json, "    \"prune_rate\": {:.3}", e.prune_rate()).unwrap();
            json.push_str("  }\n}\n");
        }
        None => json.push_str("{\"available\": false}\n}\n"),
    }

    let dir = args.results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join("BENCH_regfile.json");
    fs::write(&path, json).expect("write BENCH_regfile.json");
    println!("\nwrote {}", path.display());
}
