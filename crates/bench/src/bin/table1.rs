//! Table 1 — characteristics of the benchmark programs.
//!
//! Paper columns: lines of source code, static instructions, instructions
//! executed, and average instructions per context switch. Run with
//! `--scale 1` (default) for evaluation-sized inputs; see
//! [`nsf_bench::figures::table1`] for the grid and table layout.

use nsf_bench::figures::table1;

fn main() {
    nsf_bench::figure_main(table1::grid, table1::render);
}
