//! Table 1 — characteristics of the benchmark programs.
//!
//! Paper columns: lines of source code, static instructions, instructions
//! executed, and average instructions per context switch. Run with
//! `--scale 1` (default) for evaluation-sized inputs.

use nsf_bench::{measure, nsf_config, scale_from_args, PAR_FILE_REGS, SEQ_FILE_REGS};

fn main() {
    let scale = scale_from_args();
    println!("Table 1: Characteristics of benchmark programs (scale {scale})");
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>12} {:>12}",
        "Benchmark", "Type", "Src", "Static", "Executed", "Instr/switch"
    );
    nsf_bench::rule(66);
    for w in nsf_workloads::paper_suite(scale) {
        let regs = if w.parallel { PAR_FILE_REGS } else { SEQ_FILE_REGS };
        let r = measure(&w, nsf_config(regs));
        println!(
            "{:<10} {:>10} {:>8} {:>8} {:>12} {:>12.0}",
            w.name,
            if w.parallel { "Parallel" } else { "Sequential" },
            w.source_lines,
            r.static_instructions,
            r.instructions,
            r.instrs_per_switch(),
        );
    }
}
