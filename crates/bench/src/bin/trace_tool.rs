//! Record, inspect, replay and diff `.nsftrace` register-event traces.
//!
//! ```sh
//! # Capture a benchmark's operation stream (validated live run):
//! cargo run --release -p nsf-bench --bin trace_tool -- \
//!     record --workload gatesim --scale 1 --out gatesim.nsftrace
//!
//! # Header, event histogram and sizes:
//! cargo run --release -p nsf-bench --bin trace_tool -- info gatesim.nsftrace
//!
//! # Re-sweep the design space from the trace (no workload re-execution);
//! # several engines fan across --threads workers:
//! cargo run --release -p nsf-bench --bin trace_tool -- \
//!     replay gatesim.nsftrace --engine nsf:80 --engine segmented:4x20 --threads 2
//!
//! # First divergent operation and per-statistic deltas between engines:
//! cargo run --release -p nsf-bench --bin trace_tool -- \
//!     diff gatesim.nsftrace --a nsf:80 --b nsf:40
//! ```
//!
//! Engine specs follow `nsf_trace::spec` (`nsf:80`, `nsf:128x4`,
//! `segmented:4x32`, `segmented-sw:...`, `segmented-valid:...`,
//! `windowed:20`, `conventional:32`, `oracle`). Replaying a trace
//! through the engine that recorded it reproduces the live run's
//! statistics exactly; other engines answer "what would this op stream
//! have cost on that file?".

use nsf_bench::{CliArgs, CliSpec};
use nsf_sim::SimConfig;
use nsf_trace::{capture, diff, parse_engine, replay, ReplayReport, Trace, TraceReader};
use nsf_workloads::Workload;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Instant;

fn usage() -> ExitCode {
    eprintln!(
        "usage: trace_tool record --workload NAME [--engine SPEC] [--scale N] [--out FILE]\n\
         \x20      trace_tool info FILE\n\
         \x20      trace_tool replay FILE [--engine SPEC]... [--threads N]\n\
         \x20      trace_tool diff FILE --a SPEC --b SPEC"
    );
    ExitCode::from(64)
}

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("trace_tool: {msg}");
    ExitCode::from(2)
}

/// The flags each subcommand accepts (strict: anything else errors).
fn spec_for(cmd: &str) -> Option<CliSpec> {
    // `replay` fans one trace across many engines, so only its
    // `--engine` may repeat; everywhere else a duplicate flag is a
    // usage error (exit 64), like every other binary's CLI.
    let (value_flags, repeatable): (&'static [&'static str], &'static [&'static str]) = match cmd {
        "record" => (&["workload", "engine", "scale", "out"], &[]),
        "info" => (&[], &[]),
        "replay" => (&["engine", "threads"], &["engine"]),
        "diff" => (&["a", "b"], &[]),
        _ => return None,
    };
    Some(CliSpec {
        value_flags,
        switches: &[],
        repeatable,
    })
}

type Args = CliArgs;

/// Builds the named paper benchmark (case-insensitive) at `scale`.
fn workload_by_name(name: &str, scale: u32) -> Result<Workload, String> {
    let suite = nsf_workloads::paper_suite(scale);
    let names: Vec<&str> = suite.iter().map(|w| w.name).collect();
    suite
        .into_iter()
        .find(|w| w.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown workload {name:?}; known: {}", names.join(", ")))
}

fn engine_config(spec: &str) -> Result<SimConfig, String> {
    Ok(SimConfig::with_regfile(
        parse_engine(spec).map_err(|e| e.to_string())?,
    ))
}

fn cmd_record(args: &Args) -> Result<(), String> {
    let name = args
        .flag("workload")
        .ok_or("record needs --workload NAME")?;
    let scale: u32 = match args.flag("scale") {
        Some(s) => s.parse().map_err(|_| format!("bad --scale {s:?}"))?,
        None => 1,
    };
    let workload = workload_by_name(name, scale)?;
    let spec = args
        .flag("engine")
        .unwrap_or_else(|| nsf_trace::default_engine_spec(workload.parallel));
    let out = args
        .flag("out")
        .map(str::to_string)
        .unwrap_or_else(|| format!("{}.nsftrace", workload.name.to_lowercase()));
    let cfg = engine_config(spec)?;
    let t = Instant::now();
    let (trace, report) =
        capture(&workload, cfg, spec, scale).map_err(|e| format!("capture failed: {e}"))?;
    trace
        .write_file(&out)
        .map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "recorded {}: {} events ({} register ops) from {} instructions under {} in {:.1} ms",
        out,
        trace.events.len(),
        trace.events.iter().filter(|e| !e.event.is_mem()).count(),
        report.instructions,
        spec,
        t.elapsed().as_secs_f64() * 1e3,
    );
    Ok(())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let path = args.positional().first().ok_or("info needs a trace file")?;
    let file = File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    let bytes = file
        .metadata()
        .map_err(|e| format!("stat {path}: {e}"))?
        .len();
    // Stream rather than slurp: info must work on traces larger than RAM
    // would comfortably hold, and it doubles as a full integrity check
    // (count + checksum are verified at the trailer).
    let mut reader =
        TraceReader::new(BufReader::new(file)).map_err(|e| format!("reading {path}: {e}"))?;
    let meta = reader.meta().clone();
    let mut kinds: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut last_cycle = 0;
    while let Some(te) = reader
        .next_event()
        .map_err(|e| format!("reading {path}: {e}"))?
    {
        *kinds.entry(te.event.kind()).or_insert(0) += 1;
        last_cycle = te.cycle;
    }
    let events = reader.events_read();
    println!("{path}: nsftrace v{}", nsf_trace::FORMAT_VERSION);
    println!("  workload          {}", meta.workload);
    println!("  engine            {}", meta.engine);
    println!("  scale             {}", meta.scale);
    println!("  instructions      {}", meta.instructions);
    println!("  cycles            {}", meta.cycles);
    println!("  context switches  {}", meta.context_switches);
    println!("  events            {events} (last stamped cycle {last_cycle})");
    println!(
        "  size              {bytes} bytes ({:.2} bytes/event)",
        if events == 0 {
            0.0
        } else {
            bytes as f64 / events as f64
        }
    );
    for (kind, n) in kinds {
        println!("    {kind:<15} {n}");
    }
    println!("  integrity         ok (count + checksum verified)");
    Ok(())
}

fn print_replay(spec: &str, meta_instructions: u64, r: &ReplayReport, wall_ms: f64) {
    let s = &r.stats;
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>9} {:>11} {:>9.4} {:>9.1}",
        spec,
        s.reads,
        s.writes,
        s.regs_reloaded,
        s.regs_spilled,
        s.spill_reload_cycles,
        s.reloads_per_instruction(meta_instructions),
        wall_ms,
    );
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args
        .positional()
        .first()
        .ok_or("replay needs a trace file")?;
    let trace = Trace::read_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    let mut specs: Vec<String> = args
        .flag_all("engine")
        .iter()
        .flat_map(|s| s.split(','))
        .map(str::to_string)
        .collect();
    if specs.is_empty() {
        specs.push(trace.meta.engine.clone());
    }
    let threads: usize = match args.flag("threads") {
        Some(t) => t.parse().map_err(|_| format!("bad --threads {t:?}"))?,
        None => 1,
    };
    let configs: Vec<(String, SimConfig)> = specs
        .iter()
        .map(|s| Ok((s.clone(), engine_config(s)?)))
        .collect::<Result<_, String>>()?;

    println!(
        "replaying {} ({} events, {} instructions live) through {} engine(s)",
        path,
        trace.events.len(),
        trace.meta.instructions,
        configs.len()
    );
    println!(
        "{:<18} {:>10} {:>10} {:>9} {:>9} {:>11} {:>9} {:>9}",
        "Engine", "Reads", "Writes", "Reloads", "Spills", "SpillCyc", "Rld/inst", "Wall ms"
    );
    nsf_bench::rule(92);
    let results: Vec<(ReplayReport, f64)> = if threads <= 1 || configs.len() <= 1 {
        configs
            .iter()
            .map(|(spec, cfg)| {
                let t = Instant::now();
                let r = replay(&trace, cfg).map_err(|e| format!("{spec}: {e}"))?;
                Ok((r, t.elapsed().as_secs_f64() * 1e3))
            })
            .collect::<Result<_, String>>()?
    } else {
        // Engines are independent; fan them across worker threads. The
        // printed order stays the spec order regardless of completion.
        let mut slots: Vec<Option<Result<(ReplayReport, f64), String>>> =
            (0..configs.len()).map(|_| None).collect();
        let trace_ref = &trace;
        std::thread::scope(|s| {
            for ((spec, cfg), slot) in configs.iter().zip(slots.iter_mut()) {
                s.spawn(move || {
                    let t = Instant::now();
                    *slot = Some(
                        replay(trace_ref, cfg)
                            .map(|r| (r, t.elapsed().as_secs_f64() * 1e3))
                            .map_err(|e| format!("{spec}: {e}")),
                    );
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.expect("worker filled its slot"))
            .collect::<Result<_, String>>()?
    };
    for ((spec, _), (r, wall_ms)) in configs.iter().zip(&results) {
        print_replay(spec, trace.meta.instructions, r, *wall_ms);
    }
    if let Some((same, _)) = configs
        .iter()
        .zip(&results)
        .find(|((spec, _), _)| **spec == trace.meta.engine)
    {
        println!(
            "note: {} is the recording engine; its replayed statistics are exact",
            same.0
        );
    }
    Ok(())
}

fn cmd_diff(args: &Args) -> Result<(), String> {
    let path = args.positional().first().ok_or("diff needs a trace file")?;
    let spec_a = args.flag("a").ok_or("diff needs --a SPEC")?;
    let spec_b = args.flag("b").ok_or("diff needs --b SPEC")?;
    let trace = Trace::read_file(path).map_err(|e| format!("reading {path}: {e}"))?;
    let d = diff(&trace, &engine_config(spec_a)?, &engine_config(spec_b)?)
        .map_err(|e| e.to_string())?;
    println!(
        "diffing {} ({} events) — A: {} | B: {}",
        path, d.a.events, d.a.regfile_desc, d.b.regfile_desc
    );
    match &d.first_divergence {
        Some(div) => println!(
            "first divergence at event {} (cycle {}): {}\n  {}",
            div.index, div.event.cycle, div.event.event, div.detail
        ),
        None => println!("no per-operation divergence"),
    }
    if d.deltas.is_empty() {
        println!("statistics identical");
    } else {
        println!("{:<22} {:>12} {:>12} {:>12}", "Statistic", "A", "B", "B-A");
        nsf_bench::rule(62);
        for s in &d.deltas {
            println!("{:<22} {:>12} {:>12} {:>+12}", s.name, s.a, s.b, s.delta());
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().map(String::as_str) else {
        return usage();
    };
    let Some(spec) = spec_for(cmd) else {
        return usage();
    };
    let args = match Args::parse(&raw[1..], &spec) {
        Ok(args) => args,
        Err(e) => {
            eprintln!("trace_tool {cmd}: {e}");
            return usage();
        }
    };
    let result = match cmd {
        "record" => cmd_record(&args),
        "info" => cmd_info(&args),
        "replay" => cmd_replay(&args),
        "diff" => cmd_diff(&args),
        _ => unreachable!("spec_for gated the command"),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(e),
    }
}
