//! Figure 13 — registers reloaded vs line size, for three reload
//! strategies.
//!
//! "Three curves are shown for each application: A. Reloaded lines *
//! registers/line ... B. Live register reloads ... C. Active reloads."
//! Strategy C is realised as demand reload of single registers. See
//! [`nsf_bench::figures::fig13`] for the grid.

use nsf_bench::figures::fig13;

fn main() {
    nsf_bench::figure_main(fig13::grid, fig13::render);
}
