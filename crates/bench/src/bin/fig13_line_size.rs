//! Figure 13 — registers reloaded vs line size, for three reload
//! strategies.
//!
//! "Three curves are shown for each application: A. Reloaded lines *
//! registers/line (counts both empty registers and those containing valid
//! data). B. Live register reloads (counts only registers containing
//! valid data). C. Active reloads (counts registers that will be accessed
//! while the line is resident)." Strategy C is realised as demand reload
//! of single registers — the NSF never loads registers that are not
//! needed. Files hold 80 registers (sequential) / 128 (parallel).

use nsf_bench::{
    aggregate, measure, nsf_lines_config, pct, scale_from_args, PAR_FILE_REGS, SEQ_FILE_REGS,
};
use nsf_core::ReloadPolicy;

fn sweep(parallel: bool, scale: u32) {
    let (suite, regs, widths): (_, u32, &[u8]) = if parallel {
        (nsf_workloads::parallel_suite(scale), PAR_FILE_REGS, &[1, 2, 4, 8, 16, 32])
    } else {
        (nsf_workloads::sequential_suite(scale), SEQ_FILE_REGS, &[1, 2, 4, 8, 16])
    };
    println!(
        "\n{} applications ({} registers):",
        if parallel { "Parallel" } else { "Sequential" },
        regs
    );
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "Regs/line", "A: whole line", "B: live only", "C: active"
    );
    nsf_bench::rule(56);
    for &width in widths {
        let mut cells = Vec::new();
        for policy in [
            ReloadPolicy::WholeLine,
            ReloadPolicy::ValidOnly,
            ReloadPolicy::SingleRegister,
        ] {
            let reports: Vec<_> = suite
                .iter()
                .map(|w| measure(w, nsf_lines_config(regs, width, policy)))
                .collect();
            let agg = aggregate(&reports);
            cells.push(pct(agg.reloads_per_instr()));
        }
        println!(
            "{:<10} {:>14} {:>14} {:>14}",
            width, cells[0], cells[1], cells[2]
        );
    }
}

fn main() {
    let scale = scale_from_args();
    println!("Figure 13: Registers reloaded (% of instructions) vs line size, scale {scale}");
    sweep(false, scale);
    sweep(true, scale);
    println!();
    nsf_bench::rule(56);
    println!("Paper: an NSF with single-word lines reloads only 25% as many registers");
    println!("as a tagged segmented file on parallel code; fine-grain associative");
    println!("addressing matters more than valid bits alone.");
}
