//! Figure 6 — access times of segmented and Named-State register files.
//!
//! "Files are organized as 128 lines of 32 bits each, and 64 lines of 64
//! bits each. Each file was simulated by Spice in 1.2µm CMOS process."
//! We substitute the calibrated RC model (DESIGN.md §2).

use nsf_vlsi::{AccessTime, Geometry, Tech, TimingModel};

fn row(name: &str, t: AccessTime) {
    println!(
        "{name:<16} {:>8.2} {:>12.2} {:>10.2} {:>8.2}",
        t.decode_ns,
        t.word_select_ns,
        t.data_read_ns,
        t.total_ns()
    );
}

fn main() {
    // The model takes no scale, but the flags still go through the
    // strict CLI layer: a malformed or duplicated flag exits 64 here
    // like in every other binary.
    let _ = nsf_bench::scale_from_args();
    let model = TimingModel::new(Tech::cmos_1p2um());
    println!("Figure 6: Access time of register files (ns, 1.2um CMOS)");
    println!(
        "{:<16} {:>8} {:>12} {:>10} {:>8}",
        "Organization", "Decode", "Word select", "Data read", "Total"
    );
    nsf_bench::rule(58);
    for (name, geom) in [
        ("Segment 32x128", Geometry::g32x128()),
        ("Segment 64x64", Geometry::g64x64()),
    ] {
        row(name, model.segmented(geom));
    }
    for (name, geom) in [
        ("NSF 32x128", Geometry::g32x128()),
        ("NSF 64x64", Geometry::g64x64()),
    ] {
        row(name, model.nsf(geom));
    }
    nsf_bench::rule(58);
    for geom in [Geometry::g32x128(), Geometry::g64x64()] {
        println!(
            "NSF overhead over segmented ({}x{}): {:.1}%  (paper: 5-6%)",
            geom.bits_per_row,
            geom.rows,
            model.nsf_overhead(geom) * 100.0
        );
    }
    // The paper validated its estimates against a 2um prototype (Fig. 5).
    let proto = TimingModel::new(Tech::cmos_2um());
    println!(
        "Prototype chip (32x32, 10-bit CAM, 2um): NSF access {:.2} ns",
        proto.nsf(Geometry::prototype()).total_ns()
    );
}
