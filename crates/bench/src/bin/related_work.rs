//! Related-work comparison (paper §5): the Named-State Register File
//! against the organizations the paper positions itself against —
//! SPARC-style register windows with multithreading trap handlers
//! (Keppel \[17\], Hidaka \[11\]) and the segmented files of Sparcle/HEP.
//!
//! Windows love sequential call chains (overflow/underflow only at the
//! window boundary) but flush wholesale on every thread switch; the
//! segmented file is the mirror image; the NSF does both well.

use nsf_bench::{measure, nsf_config, pct, scale_from_args, segmented_config};
use nsf_core::segmented::DribbleConfig;
use nsf_core::SegmentedConfig;
use nsf_sim::{RegFileSpec, SimConfig};

fn main() {
    let scale = scale_from_args();
    println!("Related work: NSF vs segmented vs SPARC windows, scale {scale}");
    println!(
        "{:<11} {:<26} {:>10} {:>10} {:>10}",
        "App", "Organization", "Reloads/i", "Overhead", "CPI"
    );
    nsf_bench::rule(72);
    for w in [
        nsf_workloads::gatesim::build(scale),
        nsf_workloads::zipfile::build(scale),
        nsf_workloads::gamteb::build(scale),
        nsf_workloads::quicksort::build(scale),
    ] {
        let (regs, frames, frame_regs) = if w.parallel { (128, 4, 32) } else { (160, 8, 20) };
        let mut dribble = SegmentedConfig::paper_default(frames, frame_regs);
        dribble.dribble = Some(DribbleConfig { ops_per_reg: 4 });
        let configs: Vec<(&str, SimConfig)> = vec![
            ("NSF", nsf_config(regs)),
            ("Segmented (HW assist)", segmented_config(frames, frame_regs)),
            (
                "Segmented + dribble-back",
                SimConfig::with_regfile(RegFileSpec::Segmented(dribble)),
            ),
            (
                "SPARC windows (traps)",
                SimConfig::with_regfile(RegFileSpec::sparc_windows(frame_regs)),
            ),
        ];
        for (name, cfg) in configs {
            let r = measure(&w, cfg);
            println!(
                "{:<11} {:<26} {:>10} {:>10} {:>10.2}",
                w.name,
                name,
                pct(r.reloads_per_instr()),
                pct(r.spill_overhead()),
                r.cpi(),
            );
        }
        nsf_bench::rule(72);
    }
    println!("Windows handle call chains with boundary traps only, but flush the");
    println!("whole resident set on a thread switch; the segmented file is the");
    println!("mirror image; the NSF avoids both costs (paper §5).");
}
