//! Related-work comparison (paper §5): the Named-State Register File
//! against SPARC-style register windows with multithreading trap
//! handlers and the segmented files of Sparcle/HEP, plus a dribble-back
//! variant. See [`nsf_bench::figures::related_work`] for the grid.

use nsf_bench::figures::related_work;

fn main() {
    nsf_bench::figure_main(related_work::grid, related_work::render);
}
