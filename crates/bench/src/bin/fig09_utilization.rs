//! Figure 9 — percentage of registers containing active data.
//!
//! "Shown are maximum and average registers accessed in the NSF, and
//! average accessed in a segmented file. Each register file contains 80
//! registers for sequential simulations, or 128 registers for parallel
//! simulations." The segmented file is the paper's 4-frame reference.

use nsf_bench::{
    measure, nsf_config, pct, scale_from_args, segmented_config, PAR_CTX_REGS, PAR_FILE_REGS,
    SEQ_CTX_REGS, SEQ_FILE_REGS,
};

fn main() {
    let scale = scale_from_args();
    println!("Figure 9: Active registers (% of file), scale {scale}");
    println!(
        "{:<10} {:>9} {:>9} {:>12}",
        "App", "NSF max", "NSF avg", "Segment avg"
    );
    nsf_bench::rule(44);
    for w in nsf_workloads::paper_suite(scale) {
        let (regs, frames, frame_regs) = if w.parallel {
            (PAR_FILE_REGS, 4, PAR_CTX_REGS)
        } else {
            (SEQ_FILE_REGS, 4, SEQ_CTX_REGS)
        };
        let nsf = measure(&w, nsf_config(regs));
        let seg = measure(&w, segmented_config(frames, frame_regs));
        println!(
            "{:<10} {:>9} {:>9} {:>12}",
            w.name,
            pct(nsf.max_utilization()),
            pct(nsf.utilization()),
            pct(seg.utilization()),
        );
    }
    nsf_bench::rule(44);
    println!("Paper: NSF holds active data in 70-80% of its registers — 2-3x the");
    println!("segmented file on sequential programs, 1.3-1.5x on parallel ones.");
}
