//! Figure 9 — percentage of registers containing active data.
//!
//! "Shown are maximum and average registers accessed in the NSF, and
//! average accessed in a segmented file. Each register file contains 80
//! registers for sequential simulations, or 128 registers for parallel
//! simulations." See [`nsf_bench::figures::fig09`] for the grid.

use nsf_bench::figures::fig09;

fn main() {
    nsf_bench::figure_main(fig09::grid, fig09::render);
}
