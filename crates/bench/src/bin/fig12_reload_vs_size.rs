//! Figure 12 — registers reloaded as a percentage of instructions, for
//! different sizes of NSF and segmented register files.
//!
//! Same sweep as Figure 11 (2–10 context-sized frames; GateSim and
//! Gamteb as the representative sequential and parallel applications).

use nsf_bench::{
    measure, nsf_config, pct, scale_from_args, segmented_config, PAR_CTX_REGS, SEQ_CTX_REGS,
};

fn main() {
    let scale = scale_from_args();
    let gatesim = nsf_workloads::gatesim::build(scale);
    let gamteb = nsf_workloads::gamteb::build(scale);
    println!("Figure 12: Registers reloaded (% of instructions) vs file size, scale {scale}");
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "Frames", "Seq NSF", "Seq Segment", "Par NSF", "Par Segment"
    );
    nsf_bench::rule(64);
    for frames in 2..=10u32 {
        let seq_regs = frames * u32::from(SEQ_CTX_REGS);
        let par_regs = frames * u32::from(PAR_CTX_REGS);
        let seq_nsf = measure(&gatesim, nsf_config(seq_regs));
        let seq_seg = measure(&gatesim, segmented_config(frames, SEQ_CTX_REGS));
        let par_nsf = measure(&gamteb, nsf_config(par_regs));
        let par_seg = measure(&gamteb, segmented_config(frames, PAR_CTX_REGS));
        println!(
            "{:<8} {:>12} {:>12} {:>14} {:>14}",
            frames,
            pct(seq_nsf.reloads_per_instr()),
            pct(seq_seg.reloads_per_instr()),
            pct(par_nsf.reloads_per_instr()),
            pct(par_seg.reloads_per_instr()),
        );
    }
    nsf_bench::rule(64);
    println!("Paper: the smallest NSF reloads an order of magnitude less than any");
    println!("practical segmented file on sequential code; on parallel code the NSF");
    println!("reloads 5-6x less than a segmented file of the same size.");
}
