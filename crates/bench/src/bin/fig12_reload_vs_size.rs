//! Figure 12 — registers reloaded as a percentage of instructions, for
//! different sizes of NSF and segmented register files.
//!
//! Same sweep as Figure 11 (2–10 context-sized frames; GateSim and
//! Gamteb as the representative sequential and parallel applications).

use nsf_bench::figures::fig12;

fn main() {
    nsf_bench::figure_main(fig12::grid, fig12::render);
}
