//! Strict command-line parsing for the tool binaries (`trace_tool`,
//! `check_tool`).
//!
//! The figure binaries deliberately ignore unknown arguments
//! ([`crate::HarnessArgs`]) so a shared wrapper script can pass one flag
//! set to all of them. The *tool* binaries are different: they take
//! subcommands with meaningful flags, and silently mis-parsing one is how
//! `--engine` (no value) once recorded a trace under an empty engine
//! spec, and `--a --b nsf:40` once swallowed `--b` as the value of `--a`.
//! This parser rejects both: every declared flag must receive a value,
//! and a value is never allowed to look like a flag. Unknown flags are
//! errors too, so typos fail loudly with usage (exit 64) instead of
//! being ignored.

use std::fmt;

/// What a tool subcommand accepts: flags that take a value, and boolean
/// switches.
#[derive(Clone, Copy, Debug, Default)]
pub struct CliSpec {
    /// Flags written `--name VALUE`. Giving one twice is
    /// [`CliError::Repeated`] unless it is also listed in
    /// [`CliSpec::repeatable`] — `--scale 0 --scale 1` has no sane
    /// precedence rule, exactly like a contradictory switch pair.
    pub value_flags: &'static [&'static str],
    /// Flags written `--name` with no value. Repeating a switch is
    /// idempotent and stays allowed.
    pub switches: &'static [&'static str],
    /// The subset of [`CliSpec::value_flags`] where repetition is
    /// meaningful (`--engine A --engine B` replays through both);
    /// `flag_all` sees every occurrence in order.
    pub repeatable: &'static [&'static str],
}

/// A rejected command line, with the offending token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CliError {
    /// `--flag` was last, or was followed by another `--flag`.
    MissingValue(String),
    /// A `--flag` the subcommand does not declare.
    UnknownFlag(String),
    /// A flag value that failed to parse (`--scale x`).
    BadValue {
        /// The flag whose value was rejected.
        flag: String,
        /// The rejected text.
        value: String,
    },
    /// Two mutually exclusive switches were both given
    /// (`--frontend-cache --no-frontend-cache`).
    Conflict {
        /// The first switch.
        a: String,
        /// The contradicting switch.
        b: String,
    },
    /// A single-occurrence value flag was given more than once
    /// (`--scale 0 --scale 1`).
    Repeated(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::MissingValue(flag) => write!(f, "--{flag} needs a value"),
            CliError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            CliError::BadValue { flag, value } => write!(f, "bad --{flag} value {value:?}"),
            CliError::Conflict { a, b } => {
                write!(f, "--{a} and --{b} contradict each other")
            }
            CliError::Repeated(flag) => {
                write!(f, "--{flag} given more than once")
            }
        }
    }
}

impl std::error::Error for CliError {}

/// Parsed arguments: positional operands plus every `--flag value`
/// occurrence in order (declared-repeatable flags may repeat;
/// `flag_all` sees them all).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliArgs {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
    switches: Vec<String>,
}

impl CliArgs {
    /// Parses `raw` against `spec`. Tokens starting with `--` must be
    /// declared flags; a value flag consumes the next token, which must
    /// exist and must not itself start with `--`.
    pub fn parse(raw: &[String], spec: &CliSpec) -> Result<Self, CliError> {
        let mut out = CliArgs::default();
        let mut it = raw.iter().peekable();
        while let Some(a) = it.next() {
            let Some(name) = a.strip_prefix("--") else {
                out.positional.push(a.clone());
                continue;
            };
            if spec.switches.contains(&name) {
                out.switches.push(name.to_string());
            } else if spec.value_flags.contains(&name) {
                match it.peek() {
                    Some(v) if !v.starts_with("--") => {
                        let v = it.next().expect("just peeked");
                        if !spec.repeatable.contains(&name)
                            && out.flags.iter().any(|(n, _)| n == name)
                        {
                            return Err(CliError::Repeated(name.to_string()));
                        }
                        out.flags.push((name.to_string(), v.clone()));
                    }
                    _ => return Err(CliError::MissingValue(name.to_string())),
                }
            } else {
                return Err(CliError::UnknownFlag(name.to_string()));
            }
        }
        Ok(out)
    }

    /// Positional operands, in order.
    pub fn positional(&self) -> &[String] {
        &self.positional
    }

    /// The value of the first `--name` occurrence.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every value given for `--name`, in order.
    pub fn flag_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    /// Whether the boolean switch `--name` was given.
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The first `--name` value parsed as `T`, or `default` when absent.
    /// Unparseable values are [`CliError::BadValue`], not defaults — a
    /// mistyped `--scale` must not silently run the wrong experiment.
    pub fn parsed_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, CliError> {
        match self.flag(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: name.to_string(),
                value: v.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: CliSpec = CliSpec {
        value_flags: &["engine", "scale", "a", "b"],
        switches: &["quiet"],
        repeatable: &["engine"],
    };

    fn parse(tokens: &[&str]) -> Result<CliArgs, CliError> {
        let raw: Vec<String> = tokens.iter().map(|s| s.to_string()).collect();
        CliArgs::parse(&raw, &SPEC)
    }

    #[test]
    fn positional_flags_and_switches() {
        let a = parse(&["file.nsftrace", "--engine", "nsf:80", "--quiet"]).unwrap();
        assert_eq!(a.positional(), ["file.nsftrace"]);
        assert_eq!(a.flag("engine"), Some("nsf:80"));
        assert!(a.switch("quiet"));
        assert!(!a.switch("engine"));
        assert_eq!(a.flag("scale"), None);
    }

    #[test]
    fn repeatable_flags_accumulate_in_order() {
        let a = parse(&["--engine", "nsf:80", "--engine", "oracle"]).unwrap();
        assert_eq!(a.flag("engine"), Some("nsf:80"));
        assert_eq!(a.flag_all("engine"), ["nsf:80", "oracle"]);
    }

    #[test]
    fn duplicate_single_occurrence_flag_errors() {
        // `--scale 0 --scale 1` has no sane precedence rule: reject it,
        // exactly like a contradictory switch pair.
        assert_eq!(
            parse(&["--scale", "0", "--scale", "1"]),
            Err(CliError::Repeated("scale".into()))
        );
        // Even repeating the same value is rejected — uniformity beats
        // cleverness in an error path.
        assert_eq!(
            parse(&["--scale", "1", "--quiet", "--scale", "1"]),
            Err(CliError::Repeated("scale".into()))
        );
        // Repeated switches stay idempotent.
        assert!(parse(&["--quiet", "--quiet"]).unwrap().switch("quiet"));
    }

    #[test]
    fn trailing_flag_without_value_errors() {
        // The historical parser turned this into an empty-string value.
        assert_eq!(
            parse(&["--engine"]),
            Err(CliError::MissingValue("engine".into()))
        );
    }

    #[test]
    fn flag_followed_by_flag_errors() {
        // ...and this swallowed `--b` as the *value* of `--a`.
        assert_eq!(
            parse(&["--a", "--b", "nsf:40"]),
            Err(CliError::MissingValue("a".into()))
        );
    }

    #[test]
    fn unknown_flag_errors() {
        assert_eq!(
            parse(&["--engnie", "nsf:80"]),
            Err(CliError::UnknownFlag("engnie".into()))
        );
    }

    #[test]
    fn parsed_or_defaults_and_rejects() {
        let a = parse(&["--scale", "2"]).unwrap();
        assert_eq!(a.parsed_or("scale", 1u32).unwrap(), 2);
        let d = parse(&[]).unwrap();
        assert_eq!(d.parsed_or("scale", 1u32).unwrap(), 1);
        let bad = parse(&["--scale", "x"]).unwrap();
        assert_eq!(
            bad.parsed_or("scale", 1u32),
            Err(CliError::BadValue {
                flag: "scale".into(),
                value: "x".into()
            })
        );
    }

    #[test]
    fn errors_render_the_offender() {
        assert_eq!(
            CliError::MissingValue("engine".into()).to_string(),
            "--engine needs a value"
        );
        assert!(CliError::UnknownFlag("x".into())
            .to_string()
            .contains("--x"));
        assert!(CliError::BadValue {
            flag: "scale".into(),
            value: "x".into()
        }
        .to_string()
        .contains("\"x\""));
        let c = CliError::Conflict {
            a: "frontend-cache".into(),
            b: "no-frontend-cache".into(),
        }
        .to_string();
        assert!(c.contains("--frontend-cache") && c.contains("--no-frontend-cache"));
    }
}
