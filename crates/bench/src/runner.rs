//! The shared sweep runner: every data-driven experiment binary declares
//! its grid of (workload, configuration) points once, and this module
//! fans the independent simulations across a thread pool.
//!
//! Two properties are load-bearing:
//!
//! 1. **Determinism** — results are returned in *submission order*, so a
//!    rendered table is byte-identical whether the sweep ran on one
//!    thread or sixteen. Simulations are themselves deterministic (see
//!    `CLAUDE.md`), so the only way parallelism could leak into output
//!    is ordering; the runner removes that channel.
//! 2. **Memoisation** — each [`Workload`] is built once per sweep and
//!    shared (by index) between all points that measure it. The seed
//!    binaries rebuilt suites per figure row; a [`Sweep`] makes the
//!    sharing explicit and the build cost `O(workloads)`, not
//!    `O(points)`.
//!
//! A panic in any worker (a failed validation in [`crate::measure`])
//! propagates out of [`Sweep::run`] — a harness bug must never
//! masquerade as a data point.

use crate::measure;
use nsf_sim::{RunReport, SimConfig};
use nsf_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One simulation to run: a workload (by index into the sweep's
/// memoised workload table) under one configuration.
#[derive(Clone, Copy)]
pub struct SweepPoint {
    /// Index into [`Sweep::workloads`].
    pub workload: usize,
    /// The register-file / machine configuration to simulate.
    pub cfg: SimConfig,
}

/// A declared grid of simulation points over a set of workloads.
#[derive(Default)]
pub struct Sweep {
    /// Each benchmark, built exactly once.
    pub workloads: Vec<Workload>,
    /// The points, in submission (= output) order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Registers a workload and returns its index for use in
    /// [`Sweep::point`]. Call once per benchmark; points share it.
    pub fn workload(&mut self, w: Workload) -> usize {
        self.workloads.push(w);
        self.workloads.len() - 1
    }

    /// Registers a whole suite, returning the indices in order.
    pub fn suite(&mut self, ws: Vec<Workload>) -> Vec<usize> {
        ws.into_iter().map(|w| self.workload(w)).collect()
    }

    /// Appends one simulation point.
    pub fn point(&mut self, workload: usize, cfg: SimConfig) {
        assert!(workload < self.workloads.len(), "unknown workload index");
        self.points.push(SweepPoint { workload, cfg });
    }

    /// The registered workload behind a point (for rendering names,
    /// source line counts, etc.).
    pub fn workload_of(&self, point: usize) -> &Workload {
        &self.workloads[self.points[point].workload]
    }

    /// Runs every point and returns the reports in submission order,
    /// fanning across `threads` OS threads (`<= 1` runs serially on the
    /// caller's thread). Output is identical for every thread count.
    pub fn run(&self, threads: usize) -> Vec<RunReport> {
        if threads <= 1 || self.points.len() <= 1 {
            return self
                .points
                .iter()
                .map(|p| measure(&self.workloads[p.workload], p.cfg))
                .collect();
        }
        let threads = threads.min(self.points.len());
        let cursor = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, RunReport)>> =
            Mutex::new(Vec::with_capacity(self.points.len()));
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = self.points.get(i) else { break };
                    let report = measure(&self.workloads[p.workload], p.cfg);
                    done.lock().unwrap().push((i, report));
                });
            }
        });
        let mut done = done.into_inner().unwrap();
        done.sort_by_key(|(i, _)| *i);
        assert_eq!(done.len(), self.points.len(), "runner lost a point");
        done.into_iter().map(|(_, r)| r).collect()
    }
}

/// Command-line arguments shared by every experiment binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Problem size: 0 = smoke, 1 = the evaluation size in EXPERIMENTS.md.
    pub scale: u32,
    /// Worker threads for the sweep (default: available parallelism).
    pub threads: usize,
    /// Suppress the commentary footer under each table.
    pub quiet: bool,
    /// Output directory override for binaries that write artifacts
    /// (`--out <dir>`); `None` means the workspace `results/` directory.
    pub out: Option<String>,
}

impl HarnessArgs {
    /// Parses `--scale N`, `--threads N`, `--quiet` and `--out DIR` from
    /// the process arguments; unknown arguments are ignored.
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parses from an explicit argument list (testable form of
    /// [`HarnessArgs::parse`]).
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let args: Vec<String> = args.into_iter().collect();
        let str_of = |flag: &str| {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let value_of = |flag: &str| str_of(flag).and_then(|v| v.parse::<u64>().ok());
        HarnessArgs {
            scale: value_of("--scale").unwrap_or(1) as u32,
            threads: value_of("--threads")
                .map(|t| (t as usize).max(1))
                .unwrap_or_else(default_threads),
            quiet: args.iter().any(|a| a == "--quiet"),
            out: str_of("--out"),
        }
    }

    /// The directory artifact-writing binaries should use: `--out` if
    /// given, else the workspace `results/` directory — resolved against
    /// this crate's manifest, so the path is correct from any working
    /// directory (the seed resolved `results/` relative to the *current*
    /// directory, scattering artifacts when invoked from a subcrate).
    pub fn results_dir(&self) -> std::path::PathBuf {
        match &self.out {
            Some(dir) => std::path::PathBuf::from(dir),
            None => workspace_results_dir(),
        }
    }
}

/// The checked-in `results/` directory at the workspace root.
pub fn workspace_results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1,
            threads: default_threads(),
            quiet: false,
            out: None,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The shared `main` of every migrated experiment binary: parse the
/// harness arguments, build the figure's grid, run it, print the render.
pub fn figure_main(grid: fn(u32) -> Sweep, render: fn(u32, &Sweep, &[RunReport], bool) -> String) {
    let args = HarnessArgs::parse();
    let sweep = grid(args.scale);
    let reports = sweep.run(args.threads);
    print!("{}", render(args.scale, &sweep, &reports, args.quiet));
}

/// A cursor over sweep results for renderers that consume reports in
/// grid-declaration order (aggregated cells, per-row chunks). Panics on
/// over- or under-consumption so a renderer can never silently misalign
/// with its grid.
pub struct Cursor<'a> {
    reports: &'a [RunReport],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `reports`.
    pub fn new(reports: &'a [RunReport]) -> Self {
        Cursor { reports, pos: 0 }
    }

    /// The next single report. Not an `Iterator`: exhaustion is a
    /// renderer bug and panics rather than yielding `None`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> &'a RunReport {
        let r = &self.reports[self.pos];
        self.pos += 1;
        r
    }

    /// The next `n` reports as a slice.
    pub fn take(&mut self, n: usize) -> &'a [RunReport] {
        let s = &self.reports[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Asserts every report was consumed (renderer matches grid).
    pub fn finish(self) {
        assert_eq!(
            self.pos,
            self.reports.len(),
            "renderer left unconsumed sweep results"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nsf_config, segmented_config, SEQ_CTX_REGS, SEQ_FILE_REGS};
    use nsf_workloads::gatesim;

    fn small_sweep() -> Sweep {
        let mut s = Sweep::new();
        let gs = s.workload(gatesim::build(0));
        s.point(gs, nsf_config(SEQ_FILE_REGS));
        s.point(gs, segmented_config(4, SEQ_CTX_REGS));
        s.point(gs, nsf_config(2 * SEQ_FILE_REGS));
        s
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let sweep = small_sweep();
        let serial = sweep.run(1);
        let threaded = sweep.run(8);
        assert_eq!(serial, threaded);
        // Order is grid order, not completion order: the segmented run
        // is the second point in both.
        assert!(serial[1].regfile_desc.to_lowercase().contains("segment"));
    }

    #[test]
    fn args_parse_defaults_and_flags() {
        let a =
            HarnessArgs::from_args(["--scale", "0", "--threads", "3", "--quiet"].map(String::from));
        assert_eq!(
            a,
            HarnessArgs {
                scale: 0,
                threads: 3,
                quiet: true,
                out: None
            }
        );
        let d = HarnessArgs::from_args(std::iter::empty());
        assert_eq!(d.scale, 1);
        assert!(d.threads >= 1);
        assert!(!d.quiet);
        // --threads 0 clamps to 1 rather than deadlocking.
        let z = HarnessArgs::from_args(["--threads", "0"].map(String::from));
        assert_eq!(z.threads, 1);
    }

    #[test]
    fn out_flag_overrides_results_dir() {
        let a = HarnessArgs::from_args(["--out", "/tmp/elsewhere"].map(String::from));
        assert_eq!(a.out.as_deref(), Some("/tmp/elsewhere"));
        assert_eq!(a.results_dir(), std::path::Path::new("/tmp/elsewhere"));
        // Without --out, artifacts land in the workspace results/
        // directory regardless of the invoking working directory.
        let d = HarnessArgs::default();
        assert!(d.results_dir().ends_with("results"));
        assert!(d
            .results_dir()
            .parent()
            .unwrap()
            .join("Cargo.toml")
            .exists());
    }

    #[test]
    fn cursor_chunks_and_finishes() {
        let sweep = small_sweep();
        let reports = sweep.run(1);
        let mut c = Cursor::new(&reports);
        assert_eq!(c.take(2).len(), 2);
        let _ = c.next();
        c.finish();
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn cursor_flags_underconsumption() {
        let sweep = small_sweep();
        let reports = sweep.run(1);
        let c = Cursor::new(&reports);
        c.finish();
    }
}
