//! The shared sweep runner: every data-driven experiment binary declares
//! its grid of (workload, configuration) points once, and this module
//! fans the independent simulations across a thread pool.
//!
//! Two properties are load-bearing:
//!
//! 1. **Determinism** — results are returned in *submission order*, so a
//!    rendered table is byte-identical whether the sweep ran on one
//!    thread or sixteen. Simulations are themselves deterministic (see
//!    `CLAUDE.md`), so the only way parallelism could leak into output
//!    is ordering; the runner removes that channel.
//! 2. **Memoisation** — each [`Workload`] is built once per sweep and
//!    shared (by index) between all points that measure it. The seed
//!    binaries rebuilt suites per figure row; a [`Sweep`] makes the
//!    sharing explicit and the build cost `O(workloads)`, not
//!    `O(points)`.
//!
//! A panic in any worker (a failed validation in [`crate::measure`])
//! propagates out of [`Sweep::run`] — a harness bug must never
//! masquerade as a data point.

use crate::cli::{CliArgs, CliError, CliSpec};
use crate::{measure, measure_lanes};
use nsf_sim::{batchable_program, RunReport, SimConfig};
use nsf_trace::{capture_frontend, replay_frontend, stream_fingerprint, StreamStore};
use nsf_workloads::Workload;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One simulation to run: a workload (by index into the sweep's
/// memoised workload table) under one configuration.
#[derive(Clone, Copy)]
pub struct SweepPoint {
    /// Index into [`Sweep::workloads`].
    pub workload: usize,
    /// The register-file / machine configuration to simulate.
    pub cfg: SimConfig,
}

/// A declared grid of simulation points over a set of workloads.
#[derive(Default)]
pub struct Sweep {
    /// Each benchmark, built exactly once.
    pub workloads: Vec<Workload>,
    /// The points, in submission (= output) order.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// An empty sweep.
    pub fn new() -> Self {
        Sweep::default()
    }

    /// Registers a workload and returns its index for use in
    /// [`Sweep::point`]. Call once per benchmark; points share it.
    pub fn workload(&mut self, w: Workload) -> usize {
        self.workloads.push(w);
        self.workloads.len() - 1
    }

    /// Registers a whole suite, returning the indices in order.
    pub fn suite(&mut self, ws: Vec<Workload>) -> Vec<usize> {
        ws.into_iter().map(|w| self.workload(w)).collect()
    }

    /// Appends one simulation point.
    pub fn point(&mut self, workload: usize, cfg: SimConfig) {
        assert!(workload < self.workloads.len(), "unknown workload index");
        self.points.push(SweepPoint { workload, cfg });
    }

    /// The registered workload behind a point (for rendering names,
    /// source line counts, etc.).
    pub fn workload_of(&self, point: usize) -> &Workload {
        &self.workloads[self.points[point].workload]
    }

    /// Runs every point and returns the reports in submission order,
    /// fanning across `threads` OS threads (`<= 1` runs serially on the
    /// caller's thread). Output is identical for every thread count.
    pub fn run(&self, threads: usize) -> Vec<RunReport> {
        if threads <= 1 || self.points.len() <= 1 {
            return self
                .points
                .iter()
                .map(|p| measure(&self.workloads[p.workload], p.cfg))
                .collect();
        }
        let threads = threads.min(self.points.len());
        let cursor = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, RunReport)>> =
            Mutex::new(Vec::with_capacity(self.points.len()));
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(p) = self.points.get(i) else { break };
                    let report = measure(&self.workloads[p.workload], p.cfg);
                    done.lock().unwrap().push((i, report));
                });
            }
        });
        let mut done = done.into_inner().unwrap();
        done.sort_by_key(|(i, _)| *i);
        assert_eq!(done.len(), self.points.len(), "runner lost a point");
        done.into_iter().map(|(_, r)| r).collect()
    }

    /// Like [`Sweep::run`], but executes points that share a workload
    /// (and a machine frontend) as lane-batched [`nsf_sim::LaneSet`]
    /// passes of up to `lanes` configurations each, amortizing fetch,
    /// decode and scheduling across the group. Points whose program is
    /// not batchable ([`batchable_program`]) stay serial. Reports are
    /// returned in submission order and are bit-identical to
    /// [`Sweep::run`]'s for every `(threads, lanes)` combination;
    /// `lanes <= 1` *is* [`Sweep::run`].
    pub fn run_lanes(&self, threads: usize, lanes: usize) -> Vec<RunReport> {
        if lanes <= 1 {
            return self.run(threads);
        }
        let groups = self.lane_groups(lanes);
        // A grid whose groups all land below the lane-batching break-even
        // ([`Sweep::MIN_LANE_GROUP`]) gains nothing from the group
        // machinery — take the plain serial path, which is also what each
        // narrow group below does per point.
        if groups.iter().all(|g| !Self::lane_batchable(g.len())) {
            return self.run(threads);
        }
        let run_group = |g: &[usize]| -> Vec<RunReport> {
            let w = &self.workloads[self.points[g[0]].workload];
            if !Self::lane_batchable(g.len()) {
                // Below break-even a lane set's per-op dispatch overhead
                // exceeds the shared-frontend saving: run the points
                // exactly as [`Sweep::run`] would.
                return g.iter().map(|&i| measure(w, self.points[i].cfg)).collect();
            }
            let cfgs: Vec<SimConfig> = g.iter().map(|&i| self.points[i].cfg).collect();
            measure_lanes(w, &cfgs)
        };
        if threads <= 1 || groups.len() <= 1 {
            let mut out: Vec<Option<RunReport>> = vec![None; self.points.len()];
            for g in &groups {
                for (&i, r) in g.iter().zip(run_group(g)) {
                    out[i] = Some(r);
                }
            }
            return out
                .into_iter()
                .map(|r| r.expect("runner lost a point"))
                .collect();
        }
        let threads = threads.min(groups.len());
        let cursor = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, RunReport)>> =
            Mutex::new(Vec::with_capacity(self.points.len()));
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let gi = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(g) = groups.get(gi) else { break };
                    let reports = run_group(g);
                    let mut done = done.lock().unwrap();
                    for (&i, r) in g.iter().zip(reports) {
                        done.push((i, r));
                    }
                });
            }
        });
        let mut done = done.into_inner().unwrap();
        done.sort_by_key(|(i, _)| *i);
        assert_eq!(done.len(), self.points.len(), "runner lost a point");
        done.into_iter().map(|(_, r)| r).collect()
    }

    /// Partitions point indices into lane groups: submission-order
    /// greedy chunks of up to `lanes` points that share a workload and a
    /// machine frontend. Unbatchable workloads get singleton groups.
    /// Public so schedulers above the runner (the explorer's
    /// checkpointed driver) can see how a sweep will batch.
    pub fn lane_groups(&self, lanes: usize) -> Vec<Vec<usize>> {
        let batchable: Vec<bool> = self
            .workloads
            .iter()
            .map(|w| batchable_program(&w.program))
            .collect();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        // The open (growable) group per workload, by group index.
        let mut open: Vec<Option<usize>> = vec![None; self.workloads.len()];
        for (i, p) in self.points.iter().enumerate() {
            if !batchable[p.workload] || p.cfg.issue_width > 1 {
                // Multi-issue frontends group instructions by dynamic
                // port pressure; their streams are not lane-invariant,
                // so such points always run serial.
                groups.push(vec![i]);
                continue;
            }
            if let Some(gi) = open[p.workload] {
                let head = self.points[groups[gi][0]].cfg;
                if groups[gi].len() < lanes && head.frontend_eq(&p.cfg) {
                    groups[gi].push(i);
                    continue;
                }
            }
            open[p.workload] = Some(groups.len());
            groups.push(vec![i]);
        }
        groups
    }

    /// Partitions point indices into *frontend groups*: unbounded
    /// submission-order chunks of points that share a workload and a
    /// machine frontend ([`SimConfig::frontend_eq`]) — the unit of the
    /// frontend event-stream cache ([`Sweep::run_cached`]). Unlike
    /// [`Sweep::lane_groups`] there is no width limit (a replay is not
    /// a lockstep lane pass, so nothing caps the group), and points
    /// with execution tracing on stay singletons (a traced run cannot
    /// be captured).
    pub fn frontend_groups(&self) -> Vec<Vec<usize>> {
        let batchable: Vec<bool> = self
            .workloads
            .iter()
            .map(|w| batchable_program(&w.program))
            .collect();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        let mut open: Vec<Option<usize>> = vec![None; self.workloads.len()];
        for (i, p) in self.points.iter().enumerate() {
            if !batchable[p.workload] || p.cfg.trace_depth != 0 || p.cfg.issue_width > 1 {
                // Traced runs cannot be captured, and multi-issue
                // streams are not lane-invariant: both stay serial.
                groups.push(vec![i]);
                continue;
            }
            if let Some(gi) = open[p.workload] {
                let head = self.points[groups[gi][0]].cfg;
                if head.frontend_eq(&p.cfg) {
                    groups[gi].push(i);
                    continue;
                }
            }
            open[p.workload] = Some(groups.len());
            groups.push(vec![i]);
        }
        groups
    }

    /// Like [`Sweep::run_lanes`], but pays each distinct
    /// workload/frontend's frontend **once for the whole sweep**: the
    /// first point of every frontend group at least
    /// [`MIN_CAPTURE_GROUP`] wide runs live and captures its event
    /// stream ([`capture_frontend`]); every later point in the group
    /// replays the buffer straight into its engine — the whole group in
    /// one [`replay_frontend`] call, so the stream is decoded once per
    /// group — skipping workload generation, fetch, decode and
    /// scheduling. Groups too narrow to amortize a capture compose with
    /// the live paths instead: groups of three or more lane-batch (up
    /// to `lanes` per pass), pairs and singletons run serially. Reports
    /// are returned in submission order and are bit-identical to
    /// [`Sweep::run`]'s; replay is checked against the recorded live
    /// values and every lane's output is validated by the workload's
    /// own check, so a cached point can never silently drift.
    pub fn run_cached(&self, threads: usize, lanes: usize) -> Vec<RunReport> {
        self.run_cached_stats(threads, lanes).0
    }

    /// Smallest lane group worth a [`nsf_sim::LaneSet`] pass. A lane
    /// set's per-op dispatch (scan fan-out, lane-0 equivalence checks)
    /// is a fixed tax every lane pays; with only two lanes the shared
    /// frontend is split over too few engines to recoup it, and the
    /// measured pair-heavy grids (`depth_sweep`'s per-depth
    /// NSF/segmented pairs) ran ~15% *slower* batched than serial.
    /// Groups below this width route to the serial loop.
    pub const MIN_LANE_GROUP: usize = 3;

    /// Whether a lane group of `len` points clears the measured
    /// lane-batching break-even ([`Sweep::MIN_LANE_GROUP`]).
    pub fn lane_batchable(len: usize) -> bool {
        len >= Self::MIN_LANE_GROUP
    }

    /// Smallest frontend group [`Sweep::run_cached`] captures. A
    /// capture run costs ~1.8x a live run (event encoding) and each
    /// group pays one stream decode worth ~0.6x a live run, while a
    /// replayed lane's marginal cost is only slightly below a
    /// lane-batched lane's (the engine dominates both once the CAM
    /// lookup is a single multiply). The cache therefore has to spread
    /// its fixed capture+decode overhead across many replays before it
    /// beats lane batching — measured break-even lands in the low
    /// teens, so groups narrower than this route to lane batching
    /// (three up to the threshold) or the serial loop (pairs,
    /// singletons) instead.
    pub const MIN_CAPTURE_GROUP: usize = 16;

    /// [`Sweep::run_cached`] plus the cache's observability counters:
    /// how many points replayed from a buffer instead of running live,
    /// and how the wall time split between frontend-paying work
    /// (captures and serial points) and engine-only replay.
    pub fn run_cached_stats(
        &self,
        threads: usize,
        lanes: usize,
    ) -> (Vec<RunReport>, FrontendCacheStats) {
        self.run_stored_stats(threads, lanes, None)
    }

    /// [`Sweep::run_cached`] backed by a persistent [`StreamStore`]:
    /// before capturing, each capturable frontend group looks its
    /// stream up by content fingerprint ([`stream_fingerprint`]) and,
    /// on a hit, replays **every** point of the group — including the
    /// head, and including singleton and narrow groups that could never
    /// amortize a live capture on their own (the effective
    /// [`Sweep::MIN_CAPTURE_GROUP`] is 1 on warm runs). On a miss the
    /// group captures live (whatever its width) and persists the stream
    /// for every later group, binary, or run that shares the
    /// fingerprint. A present-but-unusable entry (truncated, corrupted,
    /// foreign version, failed replay) is deleted and the group falls
    /// back to live capture — reports are bit-identical to
    /// [`Sweep::run`]'s in every case. `store: None` is exactly
    /// [`Sweep::run_cached`].
    pub fn run_stored(
        &self,
        threads: usize,
        lanes: usize,
        store: Option<&StreamStore>,
    ) -> Vec<RunReport> {
        self.run_stored_stats(threads, lanes, store).0
    }

    /// [`Sweep::run_stored`] plus the cache/store counters.
    pub fn run_stored_stats(
        &self,
        threads: usize,
        lanes: usize,
        store: Option<&StreamStore>,
    ) -> (Vec<RunReport>, FrontendCacheStats) {
        let lanes = lanes.max(1);
        let groups = self.frontend_groups();
        let batchable: Vec<bool> = self
            .workloads
            .iter()
            .map(|w| batchable_program(&w.program))
            .collect();
        // A group is store-capturable iff its stream is lane-invariant
        // and untraced — the same conditions [`Sweep::frontend_groups`]
        // applies, re-derived here because its singletons are ambiguous
        // (a group of one is either an excluded point or just a lonely
        // frontend).
        let capturable = |g: &[usize]| {
            let p = &self.points[g[0]];
            batchable[p.workload] && p.cfg.trace_depth == 0 && p.cfg.issue_width == 1
        };
        let mut stats = FrontendCacheStats {
            points: self.points.len() as u64,
            ..FrontendCacheStats::default()
        };
        if groups.iter().all(|g| g.len() == 1)
            && (store.is_none() || !groups.iter().any(|g| capturable(g)))
        {
            // Nothing shares a frontend and no store could serve a
            // singleton: identical to the plain sweep, and timed as pure
            // frontend-paying work.
            let t0 = std::time::Instant::now();
            let reports = self.run(threads);
            stats.frontend_ns = t0.elapsed().as_nanos() as u64;
            return (reports, stats);
        }
        // Per group: submission-order reports plus counters.
        let run_group = |g: &[usize]| -> GroupOut {
            let w = &self.workloads[self.points[g[0]].workload];
            let head_cfg = self.points[g[0]].cfg;
            let fingerprint = match store {
                Some(_) if capturable(g) => stream_fingerprint(w, &head_cfg),
                _ => None,
            };
            if let (Some(st), Some(fp)) = (store, fingerprint) {
                match st.load_stream(fp, &head_cfg) {
                    Ok(Some(buf)) => {
                        // Warm hit: every point of the group — head
                        // included — replays from the persisted stream.
                        let t1 = std::time::Instant::now();
                        let cfgs: Vec<SimConfig> = g.iter().map(|&i| self.points[i].cfg).collect();
                        match replay_frontend(&buf, w, &cfgs) {
                            Ok(reports) => {
                                return GroupOut {
                                    reports,
                                    frontend_ns: 0,
                                    engine_ns: t1.elapsed().as_nanos() as u64,
                                    replayed: g.len() as u64,
                                    store_hits: 1,
                                    store_misses: 0,
                                    store_served: g.len() as u64,
                                }
                            }
                            // A checksummed entry that still fails the
                            // replay wall (divergence, stale semantics)
                            // is poison: drop it and recapture live.
                            Err(_) => st.remove_stream(fp),
                        }
                    }
                    Ok(None) => {}
                    // Typed reject (truncated/corrupt/foreign): never
                    // trusted — delete and recapture live.
                    Err(_) => st.remove_stream(fp),
                }
                // Store miss: capture live regardless of group width
                // (even a singleton's stream is worth persisting — the
                // next run serves it for free) and persist the stream.
                let t0 = std::time::Instant::now();
                let buf = capture_frontend(w, head_cfg)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
                let frontend_ns = t0.elapsed().as_nanos() as u64;
                // A failed save (read-only store, full disk) only costs
                // future warm hits; this run's results don't depend on it.
                let _ = st.save_stream(fp, &buf);
                let t1 = std::time::Instant::now();
                let mut out = Vec::with_capacity(g.len());
                out.push(buf.report.clone());
                if g.len() > 1 {
                    let cfgs: Vec<SimConfig> = g[1..].iter().map(|&i| self.points[i].cfg).collect();
                    out.extend(
                        replay_frontend(&buf, w, &cfgs)
                            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name)),
                    );
                }
                return GroupOut {
                    reports: out,
                    frontend_ns,
                    engine_ns: t1.elapsed().as_nanos() as u64,
                    replayed: (g.len() - 1) as u64,
                    store_hits: 0,
                    store_misses: 1,
                    store_served: 0,
                };
            }
            if g.len() < Self::MIN_CAPTURE_GROUP {
                // Too narrow to amortize a capture run (~1.8x a live
                // run of event encoding) plus a stream decode: stay
                // live. Groups clearing the lane-batching break-even
                // still share their frontend through lane-batched
                // passes; narrower ones run serially.
                let t0 = std::time::Instant::now();
                let mut out = Vec::with_capacity(g.len());
                if Self::lane_batchable(g.len()) && lanes >= 2 {
                    for chunk in g.chunks(lanes) {
                        if Self::lane_batchable(chunk.len()) {
                            let cfgs: Vec<SimConfig> =
                                chunk.iter().map(|&i| self.points[i].cfg).collect();
                            out.extend(measure_lanes(w, &cfgs));
                        } else {
                            out.extend(chunk.iter().map(|&i| measure(w, self.points[i].cfg)));
                        }
                    }
                } else {
                    out.extend(g.iter().map(|&i| measure(w, self.points[i].cfg)));
                }
                return GroupOut {
                    reports: out,
                    frontend_ns: t0.elapsed().as_nanos() as u64,
                    ..GroupOut::default()
                };
            }
            let t0 = std::time::Instant::now();
            let buf =
                capture_frontend(w, head_cfg).unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            let frontend_ns = t0.elapsed().as_nanos() as u64;
            let t1 = std::time::Instant::now();
            let cfgs: Vec<SimConfig> = g[1..].iter().map(|&i| self.points[i].cfg).collect();
            let mut out = Vec::with_capacity(g.len());
            out.push(buf.report.clone());
            out.extend(
                replay_frontend(&buf, w, &cfgs)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", w.name)),
            );
            GroupOut {
                reports: out,
                frontend_ns,
                engine_ns: t1.elapsed().as_nanos() as u64,
                replayed: (g.len() - 1) as u64,
                ..GroupOut::default()
            }
        };
        if threads <= 1 || groups.len() <= 1 {
            let mut out: Vec<Option<RunReport>> = vec![None; self.points.len()];
            for g in &groups {
                let go = run_group(g);
                stats.absorb(&go);
                for (&i, r) in g.iter().zip(go.reports) {
                    out[i] = Some(r);
                }
            }
            let reports = out
                .into_iter()
                .map(|r| r.expect("runner lost a point"))
                .collect();
            return (reports, stats);
        }
        let threads = threads.min(groups.len());
        let cursor = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, RunReport)>> =
            Mutex::new(Vec::with_capacity(self.points.len()));
        let shared: Mutex<FrontendCacheStats> = Mutex::new(stats);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| loop {
                    let gi = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(g) = groups.get(gi) else { break };
                    let go = run_group(g);
                    shared.lock().unwrap().absorb(&go);
                    let mut done = done.lock().unwrap();
                    for (&i, r) in g.iter().zip(go.reports) {
                        done.push((i, r));
                    }
                });
            }
        });
        let stats = shared.into_inner().unwrap();
        let mut done = done.into_inner().unwrap();
        done.sort_by_key(|(i, _)| *i);
        assert_eq!(done.len(), self.points.len(), "runner lost a point");
        let reports = done.into_iter().map(|(_, r)| r).collect();
        (reports, stats)
    }
}

/// One frontend group's results and counters inside
/// [`Sweep::run_stored_stats`].
#[derive(Default)]
struct GroupOut {
    reports: Vec<RunReport>,
    frontend_ns: u64,
    engine_ns: u64,
    replayed: u64,
    store_hits: u64,
    store_misses: u64,
    store_served: u64,
}

/// Observability counters for one [`Sweep::run_cached_stats`] pass: how
/// much of the grid was served from captured event streams, and where
/// the time went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FrontendCacheStats {
    /// Grid points in the sweep.
    pub points: u64,
    /// Points driven by buffer replay instead of a live frontend
    /// (in-process captures and persistent-store hits alike).
    pub replayed_points: u64,
    /// Nanoseconds spent paying the frontend: captures plus points that
    /// ran fully live (singleton groups).
    pub frontend_ns: u64,
    /// Nanoseconds spent in engine-only replay.
    pub engine_ns: u64,
    /// Points served from a persistent [`StreamStore`] entry — no live
    /// frontend ran for them at all, in this process or any other.
    pub store_served_points: u64,
    /// Frontend groups whose stream loaded from the store.
    pub store_hits: u64,
    /// Capturable frontend groups that missed the store (and captured
    /// live, persisting their stream for the next run).
    pub store_misses: u64,
}

impl FrontendCacheStats {
    /// Fraction of grid points served from the cache.
    pub fn hit_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.replayed_points as f64 / self.points as f64
        }
    }

    /// Fraction of grid points served from the persistent store.
    pub fn store_hit_rate(&self) -> f64 {
        if self.points == 0 {
            0.0
        } else {
            self.store_served_points as f64 / self.points as f64
        }
    }

    fn absorb(&mut self, go: &GroupOut) {
        self.frontend_ns += go.frontend_ns;
        self.engine_ns += go.engine_ns;
        self.replayed_points += go.replayed;
        self.store_hits += go.store_hits;
        self.store_misses += go.store_misses;
        self.store_served_points += go.store_served;
    }
}

/// Default lane width for batched sweeps (`--lanes`): wide enough to
/// cover a full same-workload column of the figure grids, while lane
/// equivalence keeps any value safe.
pub const DEFAULT_LANES: usize = 8;

/// The figure binaries' flag set (strict values, tolerated unknowns —
/// see [`HarnessArgs::try_from_args`]).
const HARNESS_SPEC: CliSpec = CliSpec {
    value_flags: &["scale", "threads", "lanes", "out"],
    switches: &[
        "quiet",
        "frontend-cache",
        "no-frontend-cache",
        "store",
        "no-store",
    ],
    repeatable: &[],
};

/// Usage line printed (with exit 64) when a figure binary rejects its
/// arguments.
pub const HARNESS_USAGE: &str = "usage: [--scale N] [--threads N] [--lanes N] \
     [--frontend-cache | --no-frontend-cache] [--store | --no-store] \
     [--quiet] [--out DIR]";

/// Command-line arguments shared by every experiment binary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HarnessArgs {
    /// Problem size: 0 = smoke, 1 = the evaluation size in EXPERIMENTS.md.
    pub scale: u32,
    /// Worker threads for the sweep (default: available parallelism).
    pub threads: usize,
    /// Maximum configurations per lane-batched pass
    /// ([`Sweep::run_lanes`]); 1 disables batching entirely.
    pub lanes: usize,
    /// Drive sweeps through the frontend event-stream cache
    /// ([`Sweep::run_cached`], the default); `--no-frontend-cache`
    /// reverts to live lane-batched execution. Output is byte-identical
    /// either way — the switch exists for timing comparisons and as an
    /// escape hatch.
    pub frontend_cache: bool,
    /// Consult the persistent stream store under `<results>/store/`
    /// ([`Sweep::run_stored`], the default); `--no-store` runs the
    /// frontend cache purely in-process. Output is byte-identical
    /// store-cold, store-warm, and store-disabled.
    pub store: bool,
    /// Suppress the commentary footer under each table.
    pub quiet: bool,
    /// Output directory override for binaries that write artifacts
    /// (`--out <dir>`); `None` means the workspace `results/` directory.
    pub out: Option<String>,
}

impl HarnessArgs {
    /// Parses `--scale N`, `--threads N`, `--lanes N`, `--quiet` and
    /// `--out DIR` from the process arguments. A malformed value for a
    /// known flag prints the error and [`HARNESS_USAGE`], then exits
    /// with status 64 — a mistyped `--scale` must not silently run the
    /// wrong experiment.
    pub fn parse() -> Self {
        Self::try_from_args(std::env::args().skip(1)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            eprintln!("{HARNESS_USAGE}");
            std::process::exit(64);
        })
    }

    /// Parses from an explicit argument list (testable form of
    /// [`HarnessArgs::parse`]). Unknown arguments are still ignored —
    /// one wrapper script can pass a shared flag set to every binary —
    /// but the *values* of known flags go through the strict
    /// [`crate::cli`] layer: `--lanes x` or a trailing `--threads` is a
    /// [`CliError`], never a silent default.
    pub fn try_from_args(args: impl IntoIterator<Item = String>) -> Result<Self, CliError> {
        let raw: Vec<String> = args.into_iter().collect();
        let parsed = CliArgs::parse(&Self::known_tokens(&raw), &HARNESS_SPEC)?;
        let cache_on = parsed.switch("frontend-cache");
        let cache_off = parsed.switch("no-frontend-cache");
        if cache_on && cache_off {
            return Err(CliError::Conflict {
                a: "frontend-cache".into(),
                b: "no-frontend-cache".into(),
            });
        }
        let store_on = parsed.switch("store");
        let store_off = parsed.switch("no-store");
        if store_on && store_off {
            return Err(CliError::Conflict {
                a: "store".into(),
                b: "no-store".into(),
            });
        }
        Ok(HarnessArgs {
            scale: parsed.parsed_or("scale", 1u32)?,
            threads: parsed.parsed_or("threads", default_threads())?.max(1),
            lanes: parsed.parsed_or("lanes", DEFAULT_LANES)?.max(1),
            frontend_cache: !cache_off,
            store: !store_off,
            quiet: parsed.switch("quiet"),
            out: parsed.flag("out").map(String::from),
        })
    }

    /// Keeps only the tokens belonging to declared flags: a known value
    /// flag and (when present) its value, or a known switch. Everything
    /// else — unknown flags, their values, stray positionals — is
    /// dropped before strict parsing.
    fn known_tokens(raw: &[String]) -> Vec<String> {
        let mut kept = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(name) = raw[i].strip_prefix("--") {
                if HARNESS_SPEC.value_flags.contains(&name) {
                    kept.push(raw[i].clone());
                    if let Some(v) = raw.get(i + 1) {
                        if !v.starts_with("--") {
                            kept.push(v.clone());
                            i += 2;
                            continue;
                        }
                    }
                } else if HARNESS_SPEC.switches.contains(&name) {
                    kept.push(raw[i].clone());
                }
            }
            i += 1;
        }
        kept
    }

    /// The directory artifact-writing binaries should use: `--out` if
    /// given, else the workspace `results/` directory — resolved against
    /// this crate's manifest, so the path is correct from any working
    /// directory (the seed resolved `results/` relative to the *current*
    /// directory, scattering artifacts when invoked from a subcrate).
    pub fn results_dir(&self) -> std::path::PathBuf {
        match &self.out {
            Some(dir) => std::path::PathBuf::from(dir),
            None => workspace_results_dir(),
        }
    }
}

/// The checked-in `results/` directory at the workspace root.
pub fn workspace_results_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

impl Default for HarnessArgs {
    fn default() -> Self {
        HarnessArgs {
            scale: 1,
            threads: default_threads(),
            lanes: DEFAULT_LANES,
            frontend_cache: true,
            store: true,
            quiet: false,
            out: None,
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The shared `main` of every migrated experiment binary: parse the
/// harness arguments, build the figure's grid, run it through the
/// frontend cache (or lane-batched live with `--no-frontend-cache`),
/// print the render. Both paths are bit-exact, so the output is
/// byte-identical for every `--lanes`, `--threads` and cache setting.
pub fn figure_main(grid: fn(u32) -> Sweep, render: fn(u32, &Sweep, &[RunReport], bool) -> String) {
    let args = HarnessArgs::parse();
    let sweep = grid(args.scale);
    let reports = run_with_args(&sweep, &args);
    print!("{}", render(args.scale, &sweep, &reports, args.quiet));
}

/// Runs a sweep the way [`figure_main`] would: through the frontend
/// cache backed by the persistent stream store at `<results>/store`
/// (the default), in-process-only with `--no-store`, or live
/// lane-batched with `--no-frontend-cache`. All paths are bit-exact.
pub fn run_with_args(sweep: &Sweep, args: &HarnessArgs) -> Vec<RunReport> {
    if args.frontend_cache {
        let store = args
            .store
            .then(|| StreamStore::open(args.results_dir().join("store")));
        sweep.run_stored(args.threads, args.lanes, store.as_ref())
    } else {
        sweep.run_lanes(args.threads, args.lanes)
    }
}

/// A cursor over sweep results for renderers that consume reports in
/// grid-declaration order (aggregated cells, per-row chunks). Panics on
/// over- or under-consumption so a renderer can never silently misalign
/// with its grid.
pub struct Cursor<'a> {
    reports: &'a [RunReport],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `reports`.
    pub fn new(reports: &'a [RunReport]) -> Self {
        Cursor { reports, pos: 0 }
    }

    /// The next single report. Not an `Iterator`: exhaustion is a
    /// renderer bug and panics rather than yielding `None`.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> &'a RunReport {
        let r = &self.reports[self.pos];
        self.pos += 1;
        r
    }

    /// The next `n` reports as a slice.
    pub fn take(&mut self, n: usize) -> &'a [RunReport] {
        let s = &self.reports[self.pos..self.pos + n];
        self.pos += n;
        s
    }

    /// Asserts every report was consumed (renderer matches grid).
    pub fn finish(self) {
        assert_eq!(
            self.pos,
            self.reports.len(),
            "renderer left unconsumed sweep results"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{nsf_config, segmented_config, SEQ_CTX_REGS, SEQ_FILE_REGS};
    use nsf_workloads::gatesim;

    fn small_sweep() -> Sweep {
        let mut s = Sweep::new();
        let gs = s.workload(gatesim::build(0));
        s.point(gs, nsf_config(SEQ_FILE_REGS));
        s.point(gs, segmented_config(4, SEQ_CTX_REGS));
        s.point(gs, nsf_config(2 * SEQ_FILE_REGS));
        s
    }

    #[test]
    fn parallel_matches_serial_in_order() {
        let sweep = small_sweep();
        let serial = sweep.run(1);
        let threaded = sweep.run(8);
        assert_eq!(serial, threaded);
        // Order is grid order, not completion order: the segmented run
        // is the second point in both.
        assert!(serial[1].regfile_desc.to_lowercase().contains("segment"));
    }

    #[test]
    fn lane_batching_matches_serial_in_order() {
        let sweep = small_sweep();
        let serial = sweep.run(1);
        for (threads, lanes) in [(1, 2), (1, 8), (8, 4)] {
            assert_eq!(
                serial,
                sweep.run_lanes(threads, lanes),
                "threads={threads} lanes={lanes}"
            );
        }
        assert_eq!(serial, sweep.run_lanes(1, 1), "lanes=1 is the serial path");
    }

    #[test]
    fn lane_batching_handles_parallel_and_mixed_grids() {
        use crate::{PAR_CTX_REGS, PAR_FILE_REGS};
        use nsf_workloads::quicksort;
        let mut s = Sweep::new();
        let gs = s.workload(gatesim::build(0));
        let qs = s.workload(quicksort::build(0));
        for w in [gs, qs, gs, qs] {
            let (file, ctx) = if w == qs {
                (PAR_FILE_REGS, PAR_CTX_REGS)
            } else {
                (SEQ_FILE_REGS, SEQ_CTX_REGS)
            };
            s.point(w, nsf_config(file));
            s.point(w, segmented_config(4, ctx));
        }
        assert_eq!(s.run(1), s.run_lanes(1, 8), "mixed seq/par grid");
        assert_eq!(s.run(1), s.run_lanes(4, 2), "threaded lane groups");
    }

    #[test]
    fn cached_sweep_matches_serial_in_order() {
        let sweep = small_sweep();
        let serial = sweep.run(1);
        for (threads, lanes) in [(1, 1), (1, 8), (8, 4)] {
            let (reports, stats) = sweep.run_cached_stats(threads, lanes);
            assert_eq!(
                serial, reports,
                "threads={threads} lanes={lanes} cached sweep must be bit-identical"
            );
            // One workload, one frontend — but three points sit below
            // the capture threshold, so the group takes the live
            // fallback (lane-batched or serial) and nothing replays.
            assert_eq!(stats.points, 3);
            assert_eq!(stats.replayed_points, 0);
            assert_eq!(stats.hit_rate(), 0.0);
        }
    }

    #[test]
    fn cached_sweep_captures_wide_groups() {
        let mut s = Sweep::new();
        let gs = s.workload(gatesim::build(0));
        // A design-space-style column: one workload, many register-file
        // organizations, wide enough to clear MIN_CAPTURE_GROUP.
        for i in 0..Sweep::MIN_CAPTURE_GROUP as u32 {
            if i % 4 == 3 {
                s.point(gs, segmented_config(2 + i / 4, SEQ_CTX_REGS));
            } else {
                s.point(gs, nsf_config(SEQ_FILE_REGS / 2 + 8 * i));
            }
        }
        let n = Sweep::MIN_CAPTURE_GROUP as u64;
        let serial = s.run(1);
        for (threads, lanes) in [(1, 1), (1, 8), (8, 4)] {
            let (reports, stats) = s.run_cached_stats(threads, lanes);
            assert_eq!(
                serial, reports,
                "threads={threads} lanes={lanes} cached sweep must be bit-identical"
            );
            // The frontend-equal points clear MIN_CAPTURE_GROUP: the
            // first captures, the rest replay in one call.
            assert_eq!(stats.points, n);
            assert_eq!(stats.replayed_points, n - 1);
            let want = (n - 1) as f64 / n as f64;
            assert!((stats.hit_rate() - want).abs() < 1e-12);
        }
    }

    #[test]
    fn cached_sweep_handles_parallel_and_mixed_grids() {
        use crate::{PAR_CTX_REGS, PAR_FILE_REGS};
        use nsf_workloads::quicksort;
        let mut s = Sweep::new();
        let gs = s.workload(gatesim::build(0));
        let qs = s.workload(quicksort::build(0));
        for w in [gs, qs, gs, qs] {
            let (file, ctx) = if w == qs {
                (PAR_FILE_REGS, PAR_CTX_REGS)
            } else {
                (SEQ_FILE_REGS, SEQ_CTX_REGS)
            };
            s.point(w, nsf_config(file));
            s.point(w, segmented_config(4, ctx));
        }
        let serial = s.run(1);
        let (cached, stats) = s.run_cached_stats(1, 8);
        assert_eq!(serial, cached, "mixed seq/par grid");
        // The parallel workload is unbatchable (singleton groups, run
        // live); the sequential one shares one frontend group, but four
        // points sit below the capture threshold, so it lane-batches
        // live instead of replaying.
        assert_eq!(stats.points, 8);
        assert_eq!(stats.replayed_points, 0);
        assert_eq!(serial, s.run_cached(4, 2), "threaded cached groups");
    }

    #[test]
    fn frontend_groups_span_the_whole_sweep() {
        let mut s = Sweep::new();
        let a = s.workload(gatesim::build(0));
        for _ in 0..5 {
            s.point(a, nsf_config(SEQ_FILE_REGS));
        }
        // No width limit: unlike lane_groups, one group takes all.
        assert_eq!(s.frontend_groups(), vec![vec![0, 1, 2, 3, 4]]);
        // A frontend change starts a new group...
        let mut cfg = nsf_config(SEQ_FILE_REGS);
        cfg.quantum = Some(64);
        s.point(a, cfg);
        s.point(a, cfg);
        assert_eq!(s.frontend_groups(), vec![vec![0, 1, 2, 3, 4], vec![5, 6]]);
        // ...and execution tracing forces singletons (uncapturable).
        let mut traced = nsf_config(SEQ_FILE_REGS);
        traced.trace_depth = 8;
        s.point(a, traced);
        s.point(a, traced);
        let groups = s.frontend_groups();
        assert_eq!(
            groups,
            vec![vec![0, 1, 2, 3, 4], vec![5, 6], vec![7], vec![8]]
        );
    }

    #[test]
    fn multi_issue_points_stay_serial_in_both_groupings() {
        let mut s = Sweep::new();
        let a = s.workload(gatesim::build(0));
        let mut wide = nsf_config(SEQ_FILE_REGS);
        wide.issue_width = 2;
        wide.read_ports = 3;
        wide.write_ports = 2;
        // Identical multi-issue frontends would pass frontend_eq, but a
        // multi-issue stream is not lane-invariant: every point must be
        // a singleton on both routing paths.
        for _ in 0..4 {
            s.point(a, wide);
        }
        assert_eq!(
            s.frontend_groups(),
            vec![vec![0], vec![1], vec![2], vec![3]]
        );
        assert_eq!(s.lane_groups(8), vec![vec![0], vec![1], vec![2], vec![3]]);
        // And the full cached path still reproduces the serial sweep.
        let serial = s.run(1);
        assert_eq!(serial, s.run_lanes(1, 8));
        assert_eq!(serial, s.run_cached(2, 4));
    }

    #[test]
    fn cache_flags_parse_and_conflict() {
        let on = HarnessArgs::try_from_args(["--frontend-cache"].map(String::from)).unwrap();
        assert!(on.frontend_cache);
        let off = HarnessArgs::try_from_args(["--no-frontend-cache"].map(String::from)).unwrap();
        assert!(!off.frontend_cache);
        // Default is on.
        assert!(
            HarnessArgs::try_from_args(std::iter::empty())
                .unwrap()
                .frontend_cache
        );
        // Contradictory switches are a usage error (exit 64 in main),
        // never a silent precedence rule.
        let err = HarnessArgs::try_from_args(
            ["--frontend-cache", "--no-frontend-cache"].map(String::from),
        )
        .unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }));
    }

    #[test]
    fn store_flags_parse_and_conflict() {
        let on = HarnessArgs::try_from_args(["--store"].map(String::from)).unwrap();
        assert!(on.store);
        let off = HarnessArgs::try_from_args(["--no-store"].map(String::from)).unwrap();
        assert!(!off.store);
        // Default is on: figure binaries persist and reuse streams.
        assert!(
            HarnessArgs::try_from_args(std::iter::empty())
                .unwrap()
                .store
        );
        let err =
            HarnessArgs::try_from_args(["--store", "--no-store"].map(String::from)).unwrap_err();
        assert!(matches!(err, CliError::Conflict { .. }));
    }

    #[test]
    fn lane_groups_chunk_per_workload_in_order() {
        let mut s = Sweep::new();
        let a = s.workload(gatesim::build(0));
        for _ in 0..5 {
            s.point(a, nsf_config(SEQ_FILE_REGS));
        }
        let groups = s.lane_groups(2);
        assert_eq!(groups, vec![vec![0, 1], vec![2, 3], vec![4]]);
        // A frontend change (different quantum) breaks the chain even
        // mid-group: lanes must share the whole machine frontend.
        let mut cfg = nsf_config(SEQ_FILE_REGS);
        cfg.quantum = Some(64);
        s.point(a, cfg);
        s.point(a, cfg);
        let groups = s.lane_groups(8);
        assert_eq!(groups, vec![vec![0, 1, 2, 3, 4], vec![5, 6]]);
    }

    #[test]
    fn args_parse_defaults_and_flags() {
        let a = HarnessArgs::try_from_args(
            ["--scale", "0", "--threads", "3", "--lanes", "2", "--quiet"].map(String::from),
        )
        .unwrap();
        assert_eq!(
            a,
            HarnessArgs {
                scale: 0,
                threads: 3,
                lanes: 2,
                frontend_cache: true,
                store: true,
                quiet: true,
                out: None
            }
        );
        let d = HarnessArgs::try_from_args(std::iter::empty()).unwrap();
        assert_eq!(d.scale, 1);
        assert!(d.threads >= 1);
        assert_eq!(d.lanes, DEFAULT_LANES);
        assert!(!d.quiet);
        // --threads 0 / --lanes 0 clamp to 1 rather than deadlocking.
        let z = HarnessArgs::try_from_args(["--threads", "0", "--lanes", "0"].map(String::from))
            .unwrap();
        assert_eq!(z.threads, 1);
        assert_eq!(z.lanes, 1);
        // Unknown flags (and their values) are still tolerated, so one
        // wrapper script can drive every binary.
        let u = HarnessArgs::try_from_args(
            ["--mystery", "7", "positional", "--scale", "0"].map(String::from),
        )
        .unwrap();
        assert_eq!(u.scale, 0);
    }

    #[test]
    fn malformed_known_flag_values_are_errors() {
        // Pinned, not incidental: a mistyped value for a *known* flag
        // must fail parsing (the binaries turn this into exit 64), never
        // silently fall back to a default.
        for bad in [
            vec!["--lanes", "x"],
            vec!["--lanes", "-3"],
            vec!["--threads", "many"],
            vec!["--scale", "1.5"],
            vec!["--lanes"],
            vec!["--threads", "--quiet"],
        ] {
            let args = bad.iter().map(|s| s.to_string());
            assert!(
                HarnessArgs::try_from_args(args).is_err(),
                "{bad:?} must be rejected"
            );
        }
    }

    #[test]
    fn out_flag_overrides_results_dir() {
        let a = HarnessArgs::try_from_args(["--out", "/tmp/elsewhere"].map(String::from)).unwrap();
        assert_eq!(a.out.as_deref(), Some("/tmp/elsewhere"));
        assert_eq!(a.results_dir(), std::path::Path::new("/tmp/elsewhere"));
        // Without --out, artifacts land in the workspace results/
        // directory regardless of the invoking working directory.
        let d = HarnessArgs::default();
        assert!(d.results_dir().ends_with("results"));
        assert!(d
            .results_dir()
            .parent()
            .unwrap()
            .join("Cargo.toml")
            .exists());
    }

    #[test]
    fn cursor_chunks_and_finishes() {
        let sweep = small_sweep();
        let reports = sweep.run(1);
        let mut c = Cursor::new(&reports);
        assert_eq!(c.take(2).len(), 2);
        let _ = c.next();
        c.finish();
    }

    #[test]
    #[should_panic(expected = "unconsumed")]
    fn cursor_flags_underconsumption() {
        let sweep = small_sweep();
        let reports = sweep.run(1);
        let c = Cursor::new(&reports);
        c.finish();
    }
}
