//! # nsf-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `DESIGN.md` §4 for the
//! full index):
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — benchmark characteristics |
//! | `fig06_access_time` | Fig. 6 — register file access times |
//! | `fig07_area` | Fig. 7 — 3-ported area breakdown |
//! | `fig08_area_6port` | Fig. 8 — 6-ported area breakdown |
//! | `fig09_utilization` | Fig. 9 — % registers holding active data |
//! | `fig10_reload_traffic` | Fig. 10 — registers reloaded / instruction |
//! | `fig11_resident_contexts` | Fig. 11 — resident contexts vs file size |
//! | `fig12_reload_vs_size` | Fig. 12 — reload traffic vs file size |
//! | `fig13_line_size` | Fig. 13 — reload traffic vs line size |
//! | `fig14_overhead` | Fig. 14 — spill/reload overhead vs engine |
//! | `fig_pipeline` | extension: CPI vs issue width with port-pressure accounting |
//! | `ablations` | extra design-space studies (replacement, write-miss, quantum, rfree hints) |
//! | `related_work` | NSF vs SPARC windows vs dribble-back (paper §5) |
//! | `summary` | the paper's §9 conclusion bullets, measured |
//! | `depth_sweep` | mechanism study: resident contexts vs call depth |
//! | `export_csv` | sweep data as CSV under `results/` |
//!
//! Every binary accepts `--scale N` (default 1): 0 is a smoke-test size,
//! 1 approximates the paper's behaviour at tractable instruction counts.
//! Data-driven binaries also accept `--threads N` (default: available
//! parallelism) to fan the sweep across a thread pool — output is
//! byte-identical for every thread count — and `--quiet` to drop the
//! commentary footers. This library holds the shared configuration
//! points, the sweep runner ([`runner`]) and the per-figure grid/render
//! pairs ([`figures`]).

use nsf_core::{segmented::FramePolicy, NsfConfig, ReloadPolicy, SegmentedConfig, SpillEngine};
use nsf_sim::{RunReport, SimConfig};
use nsf_workloads::{run, run_lanes, Workload};

pub mod cli;
pub mod figures;
pub mod runner;

pub use cli::{CliArgs, CliError, CliSpec};
pub use runner::{
    figure_main, run_with_args, workspace_results_dir, Cursor, FrontendCacheStats, HarnessArgs,
    Sweep, SweepPoint, DEFAULT_LANES, HARNESS_USAGE,
};

/// Registers per sequential context (the paper allocates 20).
pub const SEQ_CTX_REGS: u8 = 20;
/// Registers per parallel context (the paper allocates 32).
pub const PAR_CTX_REGS: u8 = 32;
/// Register file size for the sequential experiments (Figs. 9, 10).
pub const SEQ_FILE_REGS: u32 = 80;
/// Register file size for the parallel experiments (Figs. 9, 10).
pub const PAR_FILE_REGS: u32 = 128;

/// Parses `--scale N` (default 1) from the process arguments. Shorthand
/// for [`HarnessArgs::parse`] where only the scale matters (the
/// VLSI-model binaries, which run no simulations).
pub fn scale_from_args() -> u32 {
    HarnessArgs::parse().scale
}

/// The paper's NSF configuration over `total` registers
/// (single-register lines, LRU, demand reload).
pub fn nsf_config(total: u32) -> SimConfig {
    SimConfig::with_regfile(nsf_sim::RegFileSpec::Nsf(NsfConfig::paper_default(total)))
}

/// An NSF with an explicit line width and reload policy (Fig. 13).
pub fn nsf_lines_config(total: u32, regs_per_line: u8, reload: ReloadPolicy) -> SimConfig {
    let mut cfg = NsfConfig::paper_default(total);
    cfg.regs_per_line = regs_per_line;
    cfg.reload = reload;
    SimConfig::with_regfile(nsf_sim::RegFileSpec::Nsf(cfg))
}

/// The paper's segmented configuration: `frames` frames of `frame_regs`,
/// whole-frame transfers, hardware spill engine.
pub fn segmented_config(frames: u32, frame_regs: u8) -> SimConfig {
    SimConfig::with_regfile(nsf_sim::RegFileSpec::Segmented(
        SegmentedConfig::paper_default(frames, frame_regs),
    ))
}

/// Segmented file with per-register valid bits ("live registers only").
pub fn segmented_valid_config(frames: u32, frame_regs: u8) -> SimConfig {
    let mut cfg = SegmentedConfig::paper_default(frames, frame_regs);
    cfg.policy = FramePolicy::ValidOnly;
    SimConfig::with_regfile(nsf_sim::RegFileSpec::Segmented(cfg))
}

/// Segmented file whose spills run through software trap handlers.
pub fn segmented_software_config(frames: u32, frame_regs: u8) -> SimConfig {
    let mut cfg = SegmentedConfig::paper_default(frames, frame_regs);
    cfg.engine = SpillEngine::software();
    SimConfig::with_regfile(nsf_sim::RegFileSpec::Segmented(cfg))
}

/// Runs one workload under one configuration, panicking with a clear
/// message if the program fails or produces wrong output — a harness bug
/// must never masquerade as a data point.
pub fn measure(w: &Workload, cfg: SimConfig) -> RunReport {
    run(w, cfg).unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
}

/// Runs one workload under many configurations — as a single
/// lane-batched pass when the pair is batchable, serially otherwise —
/// with [`measure`]'s panic-on-failure contract. A lane divergence
/// (engine values disagreeing across lanes) panics here too: the
/// equivalence wall must never masquerade as a data point.
pub fn measure_lanes(w: &Workload, cfgs: &[SimConfig]) -> Vec<RunReport> {
    run_lanes(w, cfgs).unwrap_or_else(|e| panic!("{} failed: {e}", w.name))
}

/// Sums reports across a suite (for the paper's serial/parallel
/// aggregates in Fig. 14).
pub fn aggregate(reports: &[RunReport]) -> RunReport {
    let mut total = RunReport::default();
    for r in reports {
        total.instructions += r.instructions;
        total.cycles += r.cycles;
        total.idle_cycles += r.idle_cycles;
        total.context_switches += r.context_switches;
        total.thread_switches += r.thread_switches;
        total.calls += r.calls;
        total.returns += r.returns;
        total.spawns += r.spawns;
        total.regfile.merge(&r.regfile);
        total.regfile_capacity = r.regfile_capacity;
        total.regfile_desc.clone_from(&r.regfile_desc);
    }
    total
}

/// Prints a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Formats a small ratio as a percentage string.
pub fn pct(x: f64) -> String {
    if x >= 0.0995 {
        format!("{:5.1}%", x * 100.0)
    } else if x >= 0.000_95 {
        format!("{:5.2}%", x * 100.0)
    } else {
        format!("{:.4}%", x * 100.0)
    }
}

/// Shared printer for the Figure 7 / Figure 8 area tables.
pub fn print_area_figure(title: &str, ports: nsf_vlsi::Ports, desc: &str) {
    use nsf_vlsi::{AreaBreakdown, AreaModel, Geometry, Tech};
    let model = AreaModel::new(Tech::cmos_1p2um());
    println!("{title}: Area of register files in 1.2um CMOS ({desc})");
    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>12} {:>7}",
        "Organization", "Decode um^2", "Logic um^2", "Darray um^2", "Total um^2", "Ratio"
    );
    rule(76);
    let entries: Vec<(&str, AreaBreakdown)> = vec![
        (
            "Segment 32x128",
            model.segmented(Geometry::g32x128(), ports),
        ),
        ("Segment 64x64", model.segmented(Geometry::g64x64(), ports)),
        ("NSF 32x128", model.nsf(Geometry::g32x128(), ports)),
        ("NSF 64x64", model.nsf(Geometry::g64x64(), ports)),
    ];
    let baseline = entries[0].1.total_um2();
    for (name, a) in &entries {
        println!(
            "{name:<16} {:>12.0} {:>12.0} {:>12.0} {:>12.0} {:>6.0}%",
            a.decode_um2,
            a.logic_um2,
            a.darray_um2,
            a.total_um2(),
            a.total_um2() / baseline * 100.0
        );
    }
    rule(76);
    println!(
        "NSF/Segment overhead: 32x128 {:+.0}%, 64x64 {:+.0}%",
        model.nsf_overhead(Geometry::g32x128(), ports) * 100.0,
        model.nsf_overhead(Geometry::g64x64(), ports) * 100.0,
    );
    println!(
        "At a 10% register-file share, the NSF adds {:.1}% to the processor die.",
        model.processor_overhead(Geometry::g32x128(), ports, 0.10) * 100.0
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsf_workloads::{gatesim, quicksort};

    #[test]
    fn configs_build_and_run() {
        let w = gatesim::build(0);
        let a = measure(&w, nsf_config(SEQ_FILE_REGS));
        let b = measure(&w, segmented_config(4, SEQ_CTX_REGS));
        assert_eq!(a.instructions, b.instructions, "same program, same path");
    }

    #[test]
    fn aggregate_sums() {
        let w = quicksort::build(0);
        let r1 = measure(&w, nsf_config(PAR_FILE_REGS));
        let agg = aggregate(&[r1.clone(), r1.clone()]);
        assert_eq!(agg.instructions, 2 * r1.instructions);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.3812), " 38.1%");
        assert!(pct(0.0001).contains('%'));
    }
}
