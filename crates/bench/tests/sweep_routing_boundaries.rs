//! Boundary audit of `Sweep`'s three execution routes. A frontend group
//! of width `n` must land on exactly the documented path:
//!
//! - `n == 1` or `n == 2` — the serial point loop (pairs cannot recoup
//!   a lane set's batching overhead);
//! - `3 <= n < MIN_CAPTURE_GROUP` — live lane-batched passes (when the
//!   caller grants at least two lanes);
//! - `n >= MIN_CAPTURE_GROUP` (16) — capture the first point's frontend
//!   event stream, replay the remaining `n - 1`.
//!
//! Every width is also held to the equivalence wall: reports must be
//! bit-identical to the serial `Sweep::run(1)` reference, in submission
//! order.

use nsf_bench::{nsf_config, Sweep, SEQ_FILE_REGS};
use nsf_trace::StreamStore;
use nsf_workloads::gatesim;
use std::path::PathBuf;

/// One workload, `n` frontend-equal points over distinct file sizes
/// (distinct engine configs keep the points from being trivially equal).
fn sweep_of_width(n: usize) -> Sweep {
    let mut s = Sweep::new();
    let w = s.workload(gatesim::build(0));
    for i in 0..n as u32 {
        s.point(w, nsf_config(SEQ_FILE_REGS / 2 + 4 * i));
    }
    s
}

#[test]
fn group_widths_land_on_the_documented_path() {
    assert_eq!(Sweep::MIN_CAPTURE_GROUP, 16, "boundary audit assumes 16");
    for n in [1usize, 2, 3, 15, 16, 17] {
        let s = sweep_of_width(n);
        // All points share one frontend: exactly one frontend group,
        // spanning the whole sweep in submission order.
        let groups = s.frontend_groups();
        assert_eq!(groups.len(), 1, "width {n}: expected one frontend group");
        assert_eq!(
            groups[0],
            (0..n).collect::<Vec<_>>(),
            "width {n}: group must span the sweep in order"
        );
        let serial = s.run(1);
        let (reports, stats) = s.run_cached_stats(1, 4);
        assert_eq!(
            serial, reports,
            "width {n}: cached route must be bit-identical to serial"
        );
        assert_eq!(stats.points, n as u64);
        // The capture threshold is inclusive: 15 stays live (nothing
        // replays), 16 captures one point and replays the other 15.
        let want_replays = if n >= Sweep::MIN_CAPTURE_GROUP {
            n as u64 - 1
        } else {
            0
        };
        assert_eq!(
            stats.replayed_points, want_replays,
            "width {n}: wrong route (replay count)"
        );
        // The lane route agrees too, at every boundary lane count.
        for lanes in [1usize, 2, n.max(1), n + 1] {
            assert_eq!(
                serial,
                s.run_lanes(1, lanes),
                "width {n}: lane route diverged at lanes {lanes}"
            );
        }
    }
}

/// The live lane-batch fallback needs `lanes >= 2` to form a lane set;
/// with a single lane every width must fall back to the serial loop and
/// still replay nothing below the capture threshold.
#[test]
fn single_lane_budget_degrades_to_serial_below_capture() {
    for n in [3usize, 15] {
        let s = sweep_of_width(n);
        let serial = s.run(1);
        let (reports, stats) = s.run_cached_stats(1, 1);
        assert_eq!(serial, reports, "width {n} at lanes 1");
        assert_eq!(stats.replayed_points, 0, "width {n}: nothing captures");
    }
}

/// The lane-batching break-even is pinned where the measurement put it:
/// pairs and singletons serial, three and up batched. `depth_sweep`'s
/// per-depth NSF/segmented pairs regressed ~15% when pairs batched —
/// this constant is the fix, so a retune must be deliberate.
#[test]
fn lane_break_even_is_pinned_at_three() {
    assert_eq!(Sweep::MIN_LANE_GROUP, 3);
    assert!(!Sweep::lane_batchable(1));
    assert!(!Sweep::lane_batchable(2));
    assert!(Sweep::lane_batchable(3));

    // A pair-only sweep routes serial inside run_lanes and still
    // matches the serial reference bit for bit.
    let s = sweep_of_width(2);
    assert_eq!(s.run(1), s.run_lanes(1, 4), "pair group diverged");
}

/// A process-unique scratch store (wiped on entry, removed on exit).
fn scratch_store(name: &str) -> (PathBuf, StreamStore) {
    let dir = std::env::temp_dir().join(format!("nsf-routing-store-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    (dir.clone(), StreamStore::open(dir))
}

/// With a persistent store, *every* capturable width — including the
/// singletons and pairs that can never amortize a live capture — saves
/// its stream cold and replays it warm (the effective capture threshold
/// is 1 on warm runs), bit-identical to serial both ways.
#[test]
fn store_serves_narrow_groups_warm() {
    for n in [1usize, 2, 3] {
        let (dir, store) = scratch_store(&format!("narrow{n}"));
        let s = sweep_of_width(n);
        let serial = s.run(1);

        let (cold, cold_stats) = s.run_stored_stats(1, 4, Some(&store));
        assert_eq!(serial, cold, "width {n}: cold store diverged");
        assert_eq!(cold_stats.store_misses, 1, "width {n}: one group misses");
        assert_eq!(cold_stats.store_hits, 0);
        assert_eq!(
            cold_stats.replayed_points,
            n as u64 - 1,
            "width {n}: cold run replays everything behind the head"
        );

        let (warm, warm_stats) = s.run_stored_stats(1, 4, Some(&store));
        assert_eq!(serial, warm, "width {n}: warm store diverged");
        assert_eq!(warm_stats.store_hits, 1, "width {n}: the group hits");
        assert_eq!(warm_stats.store_misses, 0);
        assert_eq!(
            warm_stats.store_served_points, n as u64,
            "width {n}: every point serves from the store, head included"
        );
        assert_eq!(warm_stats.replayed_points, n as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Lane chunking at the group width itself: `lane_groups(w)` must cut
/// exact chunks with no off-by-one at the chunk boundary.
#[test]
fn lane_groups_chunk_exactly_at_the_boundary() {
    let s = sweep_of_width(17);
    assert_eq!(
        s.lane_groups(16),
        vec![(0..16).collect::<Vec<_>>(), vec![16]],
        "16-wide chunks + 1 remainder"
    );
    assert_eq!(s.lane_groups(17), vec![(0..17).collect::<Vec<_>>()]);
    let chunks = s.lane_groups(8);
    assert_eq!(
        chunks,
        vec![
            (0..8).collect::<Vec<_>>(),
            (8..16).collect::<Vec<_>>(),
            vec![16]
        ]
    );
}
