//! Scale-0 smoke tests for every migrated figure: each grid runs through
//! the library API (no subprocesses) and its results must satisfy the
//! paper's qualitative shape, not just print something.

use nsf_bench::aggregate;
use nsf_bench::figures;
use nsf_bench::runner::{Cursor, Sweep};

fn run0(grid: fn(u32) -> Sweep) -> (Sweep, Vec<nsf_sim::RunReport>) {
    let sweep = grid(0);
    let reports = sweep.run(1);
    (sweep, reports)
}

#[test]
fn table1_lists_every_paper_benchmark() {
    let (sweep, reports) = run0(figures::table1::grid);
    assert_eq!(
        sweep.workloads.len(),
        9,
        "Table 1 covers all nine benchmarks"
    );
    for (i, r) in reports.iter().enumerate() {
        assert!(
            r.instructions > 0,
            "{} executed nothing",
            sweep.workload_of(i).name
        );
        assert!(r.static_instructions > 0);
    }
    let out = figures::table1::render(0, &sweep, &reports, false);
    for w in &sweep.workloads {
        assert!(out.contains(w.name), "Table 1 missing {}", w.name);
    }
}

#[test]
fn fig09_nsf_utilization_dominates_segmented() {
    let (sweep, reports) = run0(figures::fig09::grid);
    let mut c = Cursor::new(&reports);
    for w in &sweep.workloads {
        let nsf = c.next();
        let seg = c.next();
        assert!(
            nsf.utilization() >= seg.utilization(),
            "{}: NSF avg utilization {} below segmented {}",
            w.name,
            nsf.utilization(),
            seg.utilization()
        );
        assert!(
            nsf.max_utilization() >= nsf.utilization(),
            "{}: max utilization below average",
            w.name
        );
    }
    c.finish();
}

#[test]
fn fig10_nsf_never_reloads_more_than_segmented() {
    let (sweep, reports) = run0(figures::fig10::grid);
    let mut c = Cursor::new(&reports);
    for w in &sweep.workloads {
        let nsf = c.next();
        let seg = c.next();
        assert!(
            nsf.reloads_per_instr() <= seg.reloads_per_instr(),
            "{}: NSF reloads {} exceed segmented {}",
            w.name,
            nsf.reloads_per_instr(),
            seg.reloads_per_instr()
        );
    }
    c.finish();
}

#[test]
fn fig11_segmented_contexts_bounded_by_frames() {
    let (sweep, reports) = run0(figures::fig11::grid);
    let mut c = Cursor::new(&reports);
    for frames in 2..=10u32 {
        let [_seq_nsf, seq_seg, _par_nsf, par_seg] = [c.next(), c.next(), c.next(), c.next()];
        // An N-frame segmented file can never hold more than N contexts.
        assert!(seq_seg.occupancy.avg_contexts() <= f64::from(frames) + 1e-9);
        assert!(par_seg.occupancy.avg_contexts() <= f64::from(frames) + 1e-9);
    }
    c.finish();
    assert!(!figures::fig11::render(0, &sweep, &reports, true).is_empty());
}

#[test]
fn fig12_reloads_shrink_with_file_size() {
    let (sweep, reports) = run0(figures::fig12::grid);
    let mut c = Cursor::new(&reports);
    let mut prev_seq = f64::INFINITY;
    for _frames in 2..=10u32 {
        let [seq_nsf, seq_seg, _par_nsf, _par_seg] = [c.next(), c.next(), c.next(), c.next()];
        // Growing the NSF never increases sequential reload traffic.
        assert!(seq_nsf.reloads_per_instr() <= prev_seq + 1e-12);
        prev_seq = seq_nsf.reloads_per_instr();
        assert!(seq_nsf.reloads_per_instr() <= seq_seg.reloads_per_instr());
    }
    c.finish();
    assert!(!figures::fig12::render(0, &sweep, &reports, true).is_empty());
}

#[test]
fn fig13_demand_reload_beats_whole_line() {
    let (sweep, reports) = run0(figures::fig13::grid);
    let seq_len = sweep.workloads.iter().filter(|w| !w.parallel).count();
    let par_len = sweep.workloads.len() - seq_len;
    let mut c = Cursor::new(&reports);
    for (widths, len) in [
        (&[1u8, 2, 4, 8, 16][..], seq_len),
        (&[1, 2, 4, 8, 16, 32][..], par_len),
    ] {
        for _width in widths {
            let whole = aggregate(c.take(len)).reloads_per_instr();
            let live = aggregate(c.take(len)).reloads_per_instr();
            let active = aggregate(c.take(len)).reloads_per_instr();
            // Curve ordering: counting empty slots (A) >= live-only (B)
            // >= demand/active (C).
            assert!(whole >= live - 1e-12, "whole-line {whole} < live {live}");
            assert!(live >= active - 1e-12, "live {live} < active {active}");
        }
    }
    c.finish();
}

#[test]
fn fig14_overhead_orders_nsf_hw_sw() {
    let (sweep, reports) = run0(figures::fig14::grid);
    let seq_len = sweep.workloads.iter().filter(|w| !w.parallel).count();
    let par_len = sweep.workloads.len() - seq_len;
    let mut c = Cursor::new(&reports);
    for (suite, len) in [("serial", seq_len), ("parallel", par_len)] {
        let nsf = aggregate(c.take(len)).spill_overhead();
        let hw = aggregate(c.take(len)).spill_overhead();
        let sw = aggregate(c.take(len)).spill_overhead();
        assert!(
            nsf < hw,
            "{suite}: NSF overhead {nsf} not below segmented-HW {hw}"
        );
        assert!(
            hw < sw,
            "{suite}: segmented-HW {hw} not below segmented-SW {sw}"
        );
    }
    c.finish();
}

#[test]
fn fig_pipeline_cpi_non_increasing_with_port_pressure() {
    let (sweep, reports) = run0(figures::fig_pipeline::grid);
    let seq_len = sweep.workloads.iter().filter(|w| !w.parallel).count();
    let par_len = sweep.workloads.len() - seq_len;
    let widths = figures::fig_pipeline::WIDTHS;
    let mut c = Cursor::new(&reports);
    for (suite, len) in [("serial", seq_len), ("parallel", par_len)] {
        for engine in ["NSF", "segmented-HW", "segmented-SW"] {
            let mut last_cpi = f64::INFINITY;
            let mut conflicts = 0u64;
            for width in widths {
                let agg = aggregate(c.take(len));
                let cpi = agg.cpi();
                assert!(
                    cpi <= last_cpi + 1e-12,
                    "{suite}/{engine}: CPI rose from {last_cpi} to {cpi} at width {width}"
                );
                last_cpi = cpi;
                if width == 1 {
                    assert_eq!(
                        agg.regfile.port_conflict_cycles, 0,
                        "{suite}/{engine}: single issue never arbitrates ports"
                    );
                } else {
                    conflicts += agg.regfile.port_conflict_cycles;
                }
            }
            assert!(
                conflicts > 0,
                "{suite}/{engine}: multi-issue widths never hit a port limit"
            );
        }
    }
    c.finish();
    assert!(!figures::fig_pipeline::render(0, &sweep, &reports, true).is_empty());
}

#[test]
fn ablations_render_covers_all_five_studies() {
    let (sweep, reports) = run0(figures::ablations::grid);
    let out = figures::ablations::render(0, &sweep, &reports, false);
    for study in 1..=5 {
        assert!(
            out.contains(&format!("Ablation {study}:")),
            "missing ablation {study}"
        );
    }
}

#[test]
fn related_work_nsf_beats_every_alternative_on_overhead() {
    let (sweep, reports) = run0(figures::related_work::grid);
    let mut c = Cursor::new(&reports);
    for w in &sweep.workloads {
        let nsf = c.next();
        for _ in 0..3 {
            let other = c.next();
            assert!(
                nsf.spill_overhead() <= other.spill_overhead() + 1e-12,
                "{}: NSF overhead above {}",
                w.name,
                other.regfile_desc
            );
        }
    }
    c.finish();
}

#[test]
fn depth_sweep_nsf_tracks_chain_past_segmented_saturation() {
    let (_sweep, reports) = run0(figures::depth_sweep::grid);
    let mut c = Cursor::new(&reports);
    let mut deepest_nsf = 0.0f64;
    for _depth in figures::depth_sweep::DEPTHS {
        let n = c.next();
        let s = c.next();
        assert!(
            s.occupancy.max_contexts <= 4,
            "4-frame segmented file overfull"
        );
        deepest_nsf = deepest_nsf.max(n.occupancy.avg_contexts());
    }
    c.finish();
    assert!(
        deepest_nsf > 4.0,
        "NSF never held more than the segmented frame count"
    );
}

#[test]
fn summary_renders_all_six_claims() {
    let (sweep, reports) = run0(figures::summary::grid);
    let out = figures::summary::render(0, &sweep, &reports, false);
    for claim in 1..=6 {
        assert!(
            out.contains(&format!("{claim}. \"")),
            "missing claim {claim}"
        );
    }
}

/// `--lanes 1` (serial point loop), `--lanes 4` and `--lanes 8` must
/// render byte-identical output for every figure grid: lane batching is
/// a simulator-throughput optimization and must never shift a figure.
#[test]
fn lane_counts_render_identically_for_every_figure() {
    type Grid = fn(u32) -> Sweep;
    type Render = fn(u32, &Sweep, &[nsf_sim::RunReport], bool) -> String;
    let grids: &[(&str, Grid, Render)] = &[
        ("table1", figures::table1::grid, figures::table1::render),
        ("fig09", figures::fig09::grid, figures::fig09::render),
        ("fig10", figures::fig10::grid, figures::fig10::render),
        ("fig11", figures::fig11::grid, figures::fig11::render),
        ("fig12", figures::fig12::grid, figures::fig12::render),
        ("fig13", figures::fig13::grid, figures::fig13::render),
        ("fig14", figures::fig14::grid, figures::fig14::render),
        (
            "fig_pipeline",
            figures::fig_pipeline::grid,
            figures::fig_pipeline::render,
        ),
        (
            "ablations",
            figures::ablations::grid,
            figures::ablations::render,
        ),
        (
            "related_work",
            figures::related_work::grid,
            figures::related_work::render,
        ),
        (
            "depth_sweep",
            figures::depth_sweep::grid,
            figures::depth_sweep::render,
        ),
        ("summary", figures::summary::grid, figures::summary::render),
    ];
    for &(name, grid, render) in grids {
        let sweep = grid(0);
        let one = render(0, &sweep, &sweep.run_lanes(1, 1), true);
        let four = render(0, &sweep, &sweep.run_lanes(1, 4), true);
        let eight = render(0, &sweep, &sweep.run_lanes(1, 8), true);
        assert_eq!(one, four, "{name}: --lanes 4 shifts the rendered figure");
        assert_eq!(one, eight, "{name}: --lanes 8 shifts the rendered figure");
    }
}

/// The frontend cache (`--frontend-cache`, the default) must render every
/// figure byte-identically to the uncached path (`--no-frontend-cache`):
/// replaying a captured event stream is a simulator-throughput shortcut
/// and must never shift a figure, at any thread/lane combination.
#[test]
fn frontend_cache_renders_identically_for_every_figure() {
    type Grid = fn(u32) -> Sweep;
    type Render = fn(u32, &Sweep, &[nsf_sim::RunReport], bool) -> String;
    let grids: &[(&str, Grid, Render)] = &[
        ("table1", figures::table1::grid, figures::table1::render),
        ("fig09", figures::fig09::grid, figures::fig09::render),
        ("fig10", figures::fig10::grid, figures::fig10::render),
        ("fig11", figures::fig11::grid, figures::fig11::render),
        ("fig12", figures::fig12::grid, figures::fig12::render),
        ("fig13", figures::fig13::grid, figures::fig13::render),
        ("fig14", figures::fig14::grid, figures::fig14::render),
        (
            "fig_pipeline",
            figures::fig_pipeline::grid,
            figures::fig_pipeline::render,
        ),
        (
            "ablations",
            figures::ablations::grid,
            figures::ablations::render,
        ),
        (
            "related_work",
            figures::related_work::grid,
            figures::related_work::render,
        ),
        (
            "depth_sweep",
            figures::depth_sweep::grid,
            figures::depth_sweep::render,
        ),
        ("summary", figures::summary::grid, figures::summary::render),
    ];
    for &(name, grid, render) in grids {
        let sweep = grid(0);
        let live = render(0, &sweep, &sweep.run_lanes(1, 1), true);
        let cached = render(0, &sweep, &sweep.run_cached(1, 4), true);
        let threaded = render(0, &sweep, &sweep.run_cached(4, 8), true);
        assert_eq!(live, cached, "{name}: the frontend cache shifts the figure");
        assert_eq!(live, threaded, "{name}: threaded cached groups shift it");
    }
}

#[test]
fn export_csv_shapes_match_documented_sweeps() {
    let (sweep, reports) = run0(figures::export_csv::grid);
    let csvs = figures::export_csv::csvs(&sweep, &reports);
    assert_eq!(csvs[0].name, "fig11_fig12_size_sweep.csv");
    assert_eq!(csvs[0].rows.len(), 9, "frames 2..=10");
    assert_eq!(csvs[1].name, "fig13_line_size.csv");
    assert_eq!(
        csvs[1].rows.len(),
        5 + 6,
        "five sequential + six parallel widths"
    );
    assert_eq!(csvs[2].name, "depth_sweep.csv");
    assert_eq!(csvs[2].rows.len(), figures::depth_sweep::DEPTHS.len());
    for csv in &csvs {
        let cols = csv.header.split(',').count();
        for row in &csv.rows {
            assert_eq!(
                row.split(',').count(),
                cols,
                "{}: ragged row {row}",
                csv.name
            );
        }
    }
}
