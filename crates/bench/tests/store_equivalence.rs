//! The persistent stream store's arm of the equivalence wall: for any
//! mix of engines over any lane/thread budget, a sweep run store-cold,
//! store-warm, and with the store disabled must produce reports
//! **bit-identical** to the serial `Sweep::run(1)` reference — and a
//! damaged store entry must be rejected (typed, never a panic), fall
//! back to live capture, and heal the entry for the next run.

use nsf_bench::Sweep;
use nsf_sim::SimConfig;
use nsf_trace::{parse_engine, StreamStore};
use nsf_workloads::gatesim;
use proptest::prelude::*;
use std::path::PathBuf;

/// The five engine families the explorer sweeps, by spec-grammar name.
const FAMILIES: [&str; 5] = [
    "nsf:80",
    "segmented:4x20",
    "conventional:32",
    "windowed:20",
    "oracle",
];

fn config(family: usize, size_step: u32) -> SimConfig {
    // Distinct sizes per family keep repeated picks from collapsing to
    // trivially equal points.
    let spec = match family {
        0 => format!("nsf:{}", 64 + 8 * size_step),
        1 => format!("segmented:{}x20", 3 + size_step),
        2 => format!("conventional:{}", 24 + 8 * size_step),
        // A window must hold a full 20-register context.
        3 => format!("windowed:{}", 20 + 4 * size_step),
        _ => "oracle".to_string(),
    };
    SimConfig::with_regfile(parse_engine(&spec).unwrap())
}

fn sweep_of(picks: &[(usize, u32)]) -> Sweep {
    let mut s = Sweep::new();
    let w = s.workload(gatesim::build(0));
    for &(family, step) in picks {
        s.point(w, config(family % FAMILIES.len(), step % 3));
    }
    s
}

/// A proptest-case-unique scratch store directory.
fn scratch(tag: u64) -> PathBuf {
    std::env::temp_dir().join(format!("nsf-store-eq-{}-{tag:x}", std::process::id()))
}

proptest! {
    // Each case runs four full sweeps, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// cold ≡ warm ≡ disabled ≡ serial, over every engine family.
    #[test]
    fn store_cold_warm_and_disabled_agree(
        picks in proptest::collection::vec((0usize..5, 0u32..3), 1..8),
        lanes in 1usize..5,
        threads in 1usize..3,
        tag in 0u64..u64::MAX,
    ) {
        let s = sweep_of(&picks);
        let serial = s.run(1);

        let disabled = s.run_stored(threads, lanes, None);
        prop_assert_eq!(&serial, &disabled, "store-disabled diverged");

        let dir = scratch(tag);
        let _ = std::fs::remove_dir_all(&dir);
        let store = StreamStore::open(dir.clone());
        let (cold, cold_stats) = s.run_stored_stats(threads, lanes, Some(&store));
        prop_assert_eq!(&serial, &cold, "store-cold diverged");
        prop_assert_eq!(cold_stats.store_hits, 0);

        let (warm, warm_stats) = s.run_stored_stats(threads, lanes, Some(&store));
        prop_assert_eq!(&serial, &warm, "store-warm diverged");
        prop_assert_eq!(
            warm_stats.store_misses, 0,
            "a freshly populated store must not miss"
        );
        prop_assert!(warm_stats.store_hits >= 1);
        prop_assert_eq!(warm_stats.store_served_points, picks.len() as u64);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A corrupted entry is detected by checksum, deleted, re-captured live
/// — and the reports never waver from the serial reference.
#[test]
fn corrupt_entry_falls_back_to_live_capture_and_heals() {
    let picks: Vec<(usize, u32)> = (0..5).map(|f| (f, 0)).collect();
    let s = sweep_of(&picks);
    let serial = s.run(1);

    let dir = scratch(0xc0_44_09);
    let _ = std::fs::remove_dir_all(&dir);
    let store = StreamStore::open(dir.clone());
    let (cold, _) = s.run_stored_stats(1, 4, Some(&store));
    assert_eq!(serial, cold);

    // Flip one byte in the middle of every saved entry.
    let mut entries = 0;
    for item in std::fs::read_dir(&dir).expect("store dir exists") {
        let path = item.unwrap().path();
        if path.extension().is_some_and(|e| e == "nsfs") {
            let mut bytes = std::fs::read(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x10;
            std::fs::write(&path, &bytes).unwrap();
            entries += 1;
        }
    }
    assert!(entries >= 1, "the cold run saved nothing");

    // The wounded store rejects, recaptures, and still agrees ...
    let (healed, stats) = s.run_stored_stats(1, 4, Some(&store));
    assert_eq!(serial, healed, "corrupt store leaked into the reports");
    assert_eq!(
        stats.store_hits, 0,
        "a corrupt entry must not count as a hit"
    );
    assert!(stats.store_misses >= 1);

    // ... and the rewritten entries serve the next run.
    let (warm, warm_stats) = s.run_stored_stats(1, 4, Some(&store));
    assert_eq!(serial, warm);
    assert_eq!(warm_stats.store_misses, 0, "healed entries must hit");
    let _ = std::fs::remove_dir_all(&dir);
}
