//! Exit-code contract of the strict CLI layer: a malformed value for a
//! *known* flag (`--lanes x`, `--threads -3`, …) must terminate the
//! process with the conventional usage-error status 64 and print the
//! usage line — never fall back to a default and silently run the wrong
//! experiment. Unknown strays stay tolerated (the figure binaries share
//! one flag vocabulary by design).

use std::process::Command;

/// Runs one figure binary with `args` and returns (exit code, stderr).
fn run(bin: &str, args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into(),
    )
}

fn assert_usage_error(bin: &str, args: &[&str]) {
    let (code, stderr) = run(bin, args);
    assert_eq!(
        code,
        Some(64),
        "{bin} {args:?}: expected usage-error exit 64, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin} {args:?}: no usage line on stderr: {stderr}"
    );
}

#[test]
fn malformed_lanes_value_exits_64() {
    let bin = env!("CARGO_BIN_EXE_table1");
    assert_usage_error(bin, &["--lanes", "x"]);
    assert_usage_error(bin, &["--lanes", "-3"]);
    assert_usage_error(bin, &["--scale", "0", "--lanes", "1.5"]);
}

#[test]
fn malformed_threads_value_exits_64() {
    let bin = env!("CARGO_BIN_EXE_fig09_utilization");
    assert_usage_error(bin, &["--threads", "many"]);
    assert_usage_error(bin, &["--threads", "-1"]);
}

#[test]
fn missing_value_for_known_flag_exits_64() {
    let bin = env!("CARGO_BIN_EXE_table1");
    // Trailing flag with no value, and a value swallowed by a switch.
    assert_usage_error(bin, &["--lanes"]);
    assert_usage_error(bin, &["--threads", "--quiet"]);
}

#[test]
fn perf_report_rejects_unknown_flags_too() {
    // perf_report is stricter than the figure binaries: a typo would
    // silently time the wrong experiment, so strays are errors there.
    let bin = env!("CARGO_BIN_EXE_perf_report");
    assert_usage_error(bin, &["--lanse", "4"]);
    assert_usage_error(bin, &["--lanes", "zero"]);
}

#[test]
fn contradictory_cache_switches_exit_64() {
    // `--frontend-cache --no-frontend-cache` has no sane precedence rule;
    // both the figure binaries and perf_report reject it with usage.
    let args = &["--frontend-cache", "--no-frontend-cache"];
    assert_usage_error(env!("CARGO_BIN_EXE_table1"), args);
    assert_usage_error(env!("CARGO_BIN_EXE_perf_report"), args);
}

#[test]
fn contradictory_store_switches_exit_64() {
    // Same contract for the persistent stream store's switch pair.
    let args = &["--store", "--no-store"];
    assert_usage_error(env!("CARGO_BIN_EXE_fig12_reload_vs_size"), args);
    assert_usage_error(env!("CARGO_BIN_EXE_perf_report"), args);
}

#[test]
fn store_tool_rejects_malformed_invocations() {
    let bin = env!("CARGO_BIN_EXE_store_tool");
    // No subcommand, a bogus subcommand, two subcommands.
    assert_usage_error(bin, &[]);
    assert_usage_error(bin, &["prune"]);
    assert_usage_error(bin, &["info", "gc"]);
    // Bad byte budget, and a budget on the wrong subcommand.
    assert_usage_error(bin, &["gc", "--max-bytes", "lots"]);
    assert_usage_error(bin, &["info", "--max-bytes", "5"]);
    // Unknown and duplicated flags go through the strict parser.
    assert_usage_error(bin, &["gc", "--dri", "x"]);
    assert_usage_error(bin, &["info", "--dir", "a", "--dir", "b"]);
}

/// Every binary in this crate, with the arguments that hand a duplicate
/// single-occurrence flag to its parser. The tool binaries need a valid
/// subcommand first; everything else shares the harness flag set.
const DUPLICATE_SWEEP: &[(&str, &[&str])] = &[
    (
        env!("CARGO_BIN_EXE_table1"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_fig06_access_time"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_fig07_area"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_fig08_area_6port"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_fig09_utilization"),
        &["--lanes", "2", "--lanes", "4"],
    ),
    (
        env!("CARGO_BIN_EXE_fig10_reload_traffic"),
        &["--threads", "1", "--threads", "2"],
    ),
    (
        env!("CARGO_BIN_EXE_fig11_resident_contexts"),
        &["--scale", "0", "--scale", "0"],
    ),
    (
        env!("CARGO_BIN_EXE_fig12_reload_vs_size"),
        &["--lanes", "1", "--lanes", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_fig13_line_size"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_fig14_overhead"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_fig_pipeline"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_ablations"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_related_work"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_summary"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_depth_sweep"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_export_csv"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_perf_report"),
        &["--scale", "0", "--scale", "1"],
    ),
    (
        env!("CARGO_BIN_EXE_trace_tool"),
        &[
            "record",
            "--workload",
            "GateSim",
            "--scale",
            "0",
            "--scale",
            "1",
        ],
    ),
    (
        env!("CARGO_BIN_EXE_check_tool"),
        &["fuzz", "--seed", "1", "--seed", "2"],
    ),
];

#[test]
fn duplicate_flags_exit_64_in_every_binary() {
    // `--scale 0 --scale 1` (and every other repeated single-occurrence
    // flag) has no sane precedence rule — like the contradictory cache
    // switches, every binary rejects it with usage.
    for &(bin, args) in DUPLICATE_SWEEP {
        assert_usage_error(bin, args);
    }
}

#[test]
fn repeatable_engine_flag_still_accumulates() {
    // `trace_tool replay` fans one trace across engines: its --engine
    // stays repeatable. The file is bogus, so success here means
    // *parsing* survived — the failure must be the missing file (exit
    // 2), never a usage error.
    let (code, stderr) = run(
        env!("CARGO_BIN_EXE_trace_tool"),
        &[
            "replay",
            "definitely-missing.nsftrace",
            "--engine",
            "nsf:80",
            "--engine",
            "oracle",
        ],
    );
    assert_eq!(code, Some(2), "expected runtime failure, got: {stderr}");
    assert!(
        !stderr.contains("usage:"),
        "repeated --engine tripped the parser: {stderr}"
    );
}

#[test]
fn well_formed_flags_still_run() {
    let bin = env!("CARGO_BIN_EXE_table1");
    let out = Command::new(bin)
        .args(["--scale", "0", "--lanes", "4", "--quiet"])
        .output()
        .expect("spawn table1");
    assert!(
        out.status.success(),
        "table1 --scale 0 --lanes 4 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "table1 printed nothing");
}

#[test]
fn cache_switches_run_and_agree() {
    // Each cache switch is accepted alone, and the two modes print
    // byte-identical figures — the subprocess-level face of the
    // equivalence wall the library tests pin.
    let bin = env!("CARGO_BIN_EXE_fig09_utilization");
    let mut outs = Vec::new();
    for flag in ["--frontend-cache", "--no-frontend-cache"] {
        let out = Command::new(bin)
            .args(["--scale", "0", flag])
            .output()
            .expect("spawn fig09_utilization");
        assert!(
            out.status.success(),
            "fig09_utilization --scale 0 {flag} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(!out.stdout.is_empty(), "{flag}: printed nothing");
        outs.push(out.stdout);
    }
    assert_eq!(outs[0], outs[1], "cache on/off stdout differs");
}
