//! Exit-code contract of the strict CLI layer: a malformed value for a
//! *known* flag (`--lanes x`, `--threads -3`, …) must terminate the
//! process with the conventional usage-error status 64 and print the
//! usage line — never fall back to a default and silently run the wrong
//! experiment. Unknown strays stay tolerated (the figure binaries share
//! one flag vocabulary by design).

use std::process::Command;

/// Runs one figure binary with `args` and returns (exit code, stderr).
fn run(bin: &str, args: &[&str]) -> (Option<i32>, String) {
    let out = Command::new(bin)
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    (
        out.status.code(),
        String::from_utf8_lossy(&out.stderr).into(),
    )
}

fn assert_usage_error(bin: &str, args: &[&str]) {
    let (code, stderr) = run(bin, args);
    assert_eq!(
        code,
        Some(64),
        "{bin} {args:?}: expected usage-error exit 64, stderr: {stderr}"
    );
    assert!(
        stderr.contains("usage:"),
        "{bin} {args:?}: no usage line on stderr: {stderr}"
    );
}

#[test]
fn malformed_lanes_value_exits_64() {
    let bin = env!("CARGO_BIN_EXE_table1");
    assert_usage_error(bin, &["--lanes", "x"]);
    assert_usage_error(bin, &["--lanes", "-3"]);
    assert_usage_error(bin, &["--scale", "0", "--lanes", "1.5"]);
}

#[test]
fn malformed_threads_value_exits_64() {
    let bin = env!("CARGO_BIN_EXE_fig09_utilization");
    assert_usage_error(bin, &["--threads", "many"]);
    assert_usage_error(bin, &["--threads", "-1"]);
}

#[test]
fn missing_value_for_known_flag_exits_64() {
    let bin = env!("CARGO_BIN_EXE_table1");
    // Trailing flag with no value, and a value swallowed by a switch.
    assert_usage_error(bin, &["--lanes"]);
    assert_usage_error(bin, &["--threads", "--quiet"]);
}

#[test]
fn perf_report_rejects_unknown_flags_too() {
    // perf_report is stricter than the figure binaries: a typo would
    // silently time the wrong experiment, so strays are errors there.
    let bin = env!("CARGO_BIN_EXE_perf_report");
    assert_usage_error(bin, &["--lanse", "4"]);
    assert_usage_error(bin, &["--lanes", "zero"]);
}

#[test]
fn contradictory_cache_switches_exit_64() {
    // `--frontend-cache --no-frontend-cache` has no sane precedence rule;
    // both the figure binaries and perf_report reject it with usage.
    let args = &["--frontend-cache", "--no-frontend-cache"];
    assert_usage_error(env!("CARGO_BIN_EXE_table1"), args);
    assert_usage_error(env!("CARGO_BIN_EXE_perf_report"), args);
}

#[test]
fn well_formed_flags_still_run() {
    let bin = env!("CARGO_BIN_EXE_table1");
    let out = Command::new(bin)
        .args(["--scale", "0", "--lanes", "4", "--quiet"])
        .output()
        .expect("spawn table1");
    assert!(
        out.status.success(),
        "table1 --scale 0 --lanes 4 failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(!out.stdout.is_empty(), "table1 printed nothing");
}

#[test]
fn cache_switches_run_and_agree() {
    // Each cache switch is accepted alone, and the two modes print
    // byte-identical figures — the subprocess-level face of the
    // equivalence wall the library tests pin.
    let bin = env!("CARGO_BIN_EXE_fig09_utilization");
    let mut outs = Vec::new();
    for flag in ["--frontend-cache", "--no-frontend-cache"] {
        let out = Command::new(bin)
            .args(["--scale", "0", flag])
            .output()
            .expect("spawn fig09_utilization");
        assert!(
            out.status.success(),
            "fig09_utilization --scale 0 {flag} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(!out.stdout.is_empty(), "{flag}: printed nothing");
        outs.push(out.stdout);
    }
    assert_eq!(outs[0], outs[1], "cache on/off stdout differs");
}
