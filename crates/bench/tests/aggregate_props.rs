//! Algebraic properties of the harness's aggregation layer: suite
//! aggregation must not depend on report order (the sweep runner may
//! compute points in any schedule), and `RegFileStats::merge` must be
//! associative (so chunked aggregation equals one flat pass).

use nsf_bench::aggregate;
use nsf_core::RegFileStats;
use nsf_sim::RunReport;
use proptest::collection;
use proptest::prelude::*;

fn arb_stats() -> impl Strategy<Value = RegFileStats> {
    collection::vec(0u64..1_000_000, 15..16).prop_map(|v| RegFileStats {
        reads: v[0],
        writes: v[1],
        read_hits: v[2],
        read_misses: v[3],
        write_hits: v[4],
        write_misses: v[5],
        lines_reloaded: v[6],
        regs_reloaded: v[7],
        live_regs_reloaded: v[8],
        regs_spilled: v[9],
        regs_dribbled: v[10],
        context_switches: v[11],
        switch_hits: v[12],
        spill_reload_cycles: v[13],
        port_conflict_cycles: v[14],
    })
}

/// Reports as they appear within one aggregated suite cell: numeric
/// fields vary, but every run used the same register file (aggregate
/// carries the shared description/capacity through).
fn arb_report() -> impl Strategy<Value = RunReport> {
    (collection::vec(0u64..1_000_000, 8..9), arb_stats()).prop_map(|(v, regfile)| RunReport {
        regfile_desc: "prop: shared config".to_owned(),
        regfile_capacity: 128,
        instructions: v[0],
        cycles: v[1],
        idle_cycles: v[2],
        context_switches: v[3],
        thread_switches: v[4],
        calls: v[5],
        returns: v[6],
        spawns: v[7],
        regfile,
        ..RunReport::default()
    })
}

proptest! {
    #[test]
    fn aggregate_is_permutation_invariant(
        reports in collection::vec(arb_report(), 1..7),
        rot in any::<u32>(),
    ) {
        let mut rotated = reports.clone();
        rotated.rotate_left(rot as usize % reports.len());
        prop_assert_eq!(aggregate(&reports), aggregate(&rotated));
    }

    #[test]
    fn merge_is_associative(
        a in arb_stats(),
        b in arb_stats(),
        c in arb_stats(),
    ) {
        // (a ⊕ b) ⊕ c
        let mut left = a;
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b;
        bc.merge(&c);
        let mut right = a;
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn aggregate_of_one_is_identity_on_counters(report in arb_report()) {
        let agg = aggregate(std::slice::from_ref(&report));
        prop_assert_eq!(agg.instructions, report.instructions);
        prop_assert_eq!(agg.cycles, report.cycles);
        prop_assert_eq!(agg.regfile, report.regfile);
        prop_assert_eq!(agg.regfile_capacity, report.regfile_capacity);
    }
}
