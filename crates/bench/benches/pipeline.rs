//! Criterion benchmarks of the multi-issue frontend: what the
//! scoreboard, port arbitration and CAM-penalty accounting cost per
//! simulated instruction, against the single-issue baseline on the same
//! workload and engine.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_bench::{nsf_config, segmented_config};
use nsf_sim::SimConfig;
use nsf_workloads::{gatesim, run};

/// A multi-issue variant of a baseline configuration, ported like the
/// pipeline figure (3R/2W).
fn wide(mut cfg: SimConfig, width: u32) -> SimConfig {
    cfg.issue_width = width;
    cfg.read_ports = 3;
    cfg.write_ports = 2;
    cfg
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(20);
    let gs = gatesim::build(0);
    for (tag, cfg) in [
        ("nsf", nsf_config(128)),
        ("segmented_hw", segmented_config(4, 32)),
    ] {
        // width 1 takes the pipeline-free path: the baseline the
        // scoreboard's overhead is measured against.
        for width in [1u32, 2, 4] {
            g.bench_function(format!("gatesim_{tag}_w{width}"), |b| {
                let cfg = wide(cfg, width);
                b.iter(|| run(&gs, cfg).expect("validates"));
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
