//! Criterion benchmarks of the full pipeline: compiling a benchmark and
//! simulating it on each register file organization.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_bench::{nsf_config, segmented_config, segmented_software_config};
use nsf_sim::SimConfig;
use nsf_workloads::{gatesim, quicksort, run};

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulate");
    g.sample_size(20);
    let gs = gatesim::build(0);
    let qs = quicksort::build(0);
    for (tag, cfg) in [
        ("nsf", nsf_config(128)),
        ("segmented_hw", segmented_config(4, 32)),
        ("segmented_sw", segmented_software_config(4, 32)),
    ] {
        g.bench_function(format!("gatesim_{tag}"), |b| {
            b.iter(|| run(&gs, cfg).expect("validates"));
        });
        g.bench_function(format!("quicksort_{tag}"), |b| {
            b.iter(|| run(&qs, cfg).expect("validates"));
        });
    }
    g.finish();
}

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("compile");
    g.sample_size(20);
    // `build` runs the whole front end: IR construction, liveness, graph
    // coloring, codegen, plus the Rust reference computation.
    g.bench_function("gatesim_build", |b| b.iter(|| gatesim::build(0)));
    g.bench_function("quicksort_build", |b| b.iter(|| quicksort::build(0)));
    g.finish();
}

fn bench_default_config(c: &mut Criterion) {
    // Guard against pathological slowdowns in the default setup.
    c.bench_function("default_simconfig_gatesim", |b| {
        let w = gatesim::build(0);
        b.iter(|| run(&w, SimConfig::default()).expect("validates"));
    });
}

criterion_group!(
    benches,
    bench_simulation,
    bench_compile,
    bench_default_config
);
criterion_main!(benches);
