//! Criterion microbenchmark pitting `EngineDispatch`'s static match
//! dispatch against its `Boxed` escape hatch on identical traffic: the
//! switch_storm workload (a large NSF file with many resident contexts,
//! round-robin context switches). The pair bounds what de-virtualizing
//! the simulator's per-instruction path buys.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_core::{EngineDispatch, MapStore, NamedStateFile, NsfConfig, RegAddr, RegisterFile};
use std::hint::black_box;

/// Builds the switch_storm fixture behind either dispatch mechanism:
/// 2048 registers, 64 contexts each holding 32 written registers.
fn storm_fixture(boxed: bool) -> (EngineDispatch, MapStore) {
    let inner = NamedStateFile::new(NsfConfig::paper_default(2048));
    let mut f = if boxed {
        EngineDispatch::boxed(Box::new(inner))
    } else {
        EngineDispatch::from(inner)
    };
    let mut s = MapStore::new();
    for cid in 0..64u16 {
        for off in 0..32u8 {
            f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
        }
    }
    (f, s)
}

fn bench_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("dispatch_overhead");
    for (name, boxed) in [("enum_switch_storm", false), ("boxed_switch_storm", true)] {
        g.bench_function(name, |b| {
            let (mut f, mut s) = storm_fixture(boxed);
            let mut cid = 0u16;
            b.iter(|| {
                cid = (cid + 1) % 64;
                f.switch_to(black_box(cid), &mut s).unwrap()
            });
        });
    }
    for (name, boxed) in [("enum_read_hit", false), ("boxed_read_hit", true)] {
        g.bench_function(name, |b| {
            let (mut f, mut s) = storm_fixture(boxed);
            b.iter(|| f.read(black_box(RegAddr::new(1, 5)), &mut s).unwrap().value);
        });
    }
    g.finish();
}

criterion_group!(benches, bench_dispatch);
criterion_main!(benches);
