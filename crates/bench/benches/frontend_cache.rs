//! Criterion group `frontend_cache`: capture-and-replay against live
//! simulation on a figure-style configuration fan — one workload, N
//! frontend-identical engine configurations. `capture8_replay_8cfg`
//! measures the whole cached sweep (one live capture + eight replayed
//! lanes); `replay_only_8cfg` isolates the replay engine by reusing a
//! pre-captured buffer, which is the marginal cost of every grid point
//! after the first. The serial baseline is the same fan run live.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_bench::nsf_config;
use nsf_sim::SimConfig;
use nsf_trace::{capture_frontend, replay_frontend};
use nsf_workloads::{gatesim, run};

fn bench_frontend_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("frontend_cache");
    g.sample_size(10);
    let w = gatesim::build(0);
    // A Figure-12-style size fan: eight NSF capacities, shared frontend.
    let cfgs: Vec<SimConfig> = (0..8u32).map(|i| nsf_config(48 + 16 * i)).collect();

    g.bench_function("live_8cfg", |b| {
        b.iter(|| {
            cfgs.iter()
                .map(|&cfg| run(&w, cfg).expect("validates"))
                .collect::<Vec<_>>()
        })
    });
    g.bench_function("capture_replay_8cfg", |b| {
        b.iter(|| {
            let buf = capture_frontend(&w, cfgs[0]).expect("captures");
            let mut reports = vec![buf.report.clone()];
            reports.extend(replay_frontend(&buf, &w, &cfgs[1..]).expect("replays"));
            reports
        })
    });
    let buf = capture_frontend(&w, cfgs[0]).expect("captures");
    g.bench_function("replay_only_8cfg", |b| {
        b.iter(|| replay_frontend(&buf, &w, &cfgs).expect("replays"))
    });
    g.finish();
}

criterion_group!(benches, bench_frontend_cache);
criterion_main!(benches);
