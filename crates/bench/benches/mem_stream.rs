//! Criterion microbenchmarks of raw `MainMemory` word traffic: the flat
//! two-level page table against the access patterns the simulator
//! actually generates — sequential instruction-ish streams, strided
//! context-save sweeps, scattered heap traffic, and the block transfers
//! used by program loading and trace replay.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_mem::MainMemory;
use std::hint::black_box;

/// Matches the simulator's backing arena base, so the benchmarks stress
/// the same high-address directory region the spill paths do.
const BACKING_BASE: u32 = 0x4000_0000;

fn bench_word_traffic(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem_stream");

    g.bench_function("sequential_read_4k", |b| {
        let mut m = MainMemory::new();
        for a in 0..4096u32 {
            m.write(a, a);
        }
        b.iter(|| {
            let mut sum = 0u32;
            for a in 0..4096u32 {
                sum = sum.wrapping_add(m.read(black_box(a)));
            }
            sum
        });
    });

    g.bench_function("strided_read_64w_stride", |b| {
        // The context-save sweep shape: one word per 64-word save area,
        // walking 4096 contexts of the backing arena.
        let mut m = MainMemory::new();
        for i in 0..4096u32 {
            m.write(BACKING_BASE + i * 64, i);
        }
        b.iter(|| {
            let mut sum = 0u32;
            for i in 0..4096u32 {
                sum = sum.wrapping_add(m.read(black_box(BACKING_BASE + i * 64)));
            }
            sum
        });
    });

    g.bench_function("random_read_resident_pages", |b| {
        // Scattered traffic across several resident pages: defeats the
        // last-page cache, isolating the directory-walk cost.
        let mut m = MainMemory::new();
        let addrs: Vec<u32> = (0..4096u32)
            .map(|i| (i.wrapping_mul(2654435761)) % (8 << 16))
            .collect();
        for &a in &addrs {
            m.write(a, a);
        }
        b.iter(|| {
            let mut sum = 0u32;
            for &a in &addrs {
                sum = sum.wrapping_add(m.read(black_box(a)));
            }
            sum
        });
    });

    g.bench_function("write_block_4k", |b| {
        let mut m = MainMemory::new();
        let block = vec![7u32; 4096];
        b.iter(|| m.write_block(black_box(0x1_0000 - 2048), &block));
    });

    g.bench_function("read_into_4k", |b| {
        let mut m = MainMemory::new();
        let block = vec![7u32; 4096];
        // Straddles a page boundary so the chunked loop takes both arms.
        m.write_block(0x1_0000 - 2048, &block);
        let mut out = vec![0u32; 4096];
        b.iter(|| {
            m.read_into(black_box(0x1_0000 - 2048), &mut out);
            out[0]
        });
    });

    g.finish();
}

criterion_group!(benches, bench_word_traffic);
criterion_main!(benches);
