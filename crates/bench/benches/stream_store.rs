//! Criterion group `stream_store`: the persistent store's fixed costs
//! against the live capture they displace. `encode`/`decode` bound the
//! serialization tax a store hit pays on top of replay;
//! `fingerprint` is the per-group lookup key; `save_load_roundtrip`
//! is the full filesystem path (tmp write + atomic rename + checksummed
//! read-back). `capture_live` is the work a warm hit avoids.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_bench::nsf_config;
use nsf_trace::{capture_frontend, decode_stream, encode_stream, stream_fingerprint, StreamStore};
use nsf_workloads::gatesim;

fn bench_stream_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("stream_store");
    g.sample_size(10);
    let w = gatesim::build(0);
    let cfg = nsf_config(80);
    let buf = capture_frontend(&w, cfg).expect("captures");
    let fp = stream_fingerprint(&w, &cfg).expect("fingerprints");
    let bytes = encode_stream(fp, &buf);

    g.bench_function("capture_live", |b| {
        b.iter(|| capture_frontend(&w, cfg).expect("captures"))
    });
    g.bench_function("fingerprint", |b| {
        b.iter(|| stream_fingerprint(&w, &cfg).expect("fingerprints"))
    });
    g.bench_function("encode", |b| b.iter(|| encode_stream(fp, &buf)));
    g.bench_function("decode", |b| {
        b.iter(|| decode_stream(&bytes, fp, &cfg).expect("decodes"))
    });

    let dir = std::env::temp_dir().join(format!("nsf-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = StreamStore::open(dir.clone());
    g.bench_function("save_load_roundtrip", |b| {
        b.iter(|| {
            store.save_stream(fp, &buf).expect("saves");
            store
                .load_stream(fp, &cfg)
                .expect("loads")
                .expect("present")
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_stream_store);
criterion_main!(benches);
