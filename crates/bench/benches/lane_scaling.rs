//! Criterion group `lane_scaling`: the lane-batched execution core
//! against the serial point loop on a figure-style configuration fan —
//! one workload, N frontend-identical engine configurations. This is
//! the shape `Sweep::run_lanes` batches, so the ratio here is the
//! speedup ceiling the `--lanes` knob can deliver per grid row.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_bench::nsf_config;
use nsf_sim::SimConfig;
use nsf_workloads::{gatesim, run, run_lanes};

fn bench_lane_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("lane_scaling");
    g.sample_size(10);
    let w = gatesim::build(0);
    // A Figure-12-style size fan: eight NSF capacities, shared frontend.
    let cfgs: Vec<SimConfig> = (0..8u32).map(|i| nsf_config(48 + 16 * i)).collect();

    g.bench_function("serial_8cfg", |b| {
        b.iter(|| {
            cfgs.iter()
                .map(|&cfg| run(&w, cfg).expect("validates"))
                .collect::<Vec<_>>()
        })
    });
    for lanes in [2usize, 4, 8] {
        g.bench_function(format!("lanes{lanes}_8cfg"), |b| {
            b.iter(|| {
                cfgs.chunks(lanes)
                    .flat_map(|chunk| run_lanes(&w, chunk).expect("validates"))
                    .collect::<Vec<_>>()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_lane_scaling);
criterion_main!(benches);
