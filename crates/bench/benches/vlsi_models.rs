//! Criterion benchmarks of the VLSI area/timing models (cheap by design;
//! this pins them so a regression into accidental heavy computation is
//! caught) and of the associative-decoder simulation primitives.

use criterion::{criterion_group, criterion_main, Criterion};
use nsf_core::cam::AssocDecoder;
use nsf_vlsi::{AreaModel, Geometry, Ports, Tech, TimingModel};
use std::hint::black_box;

fn bench_models(c: &mut Criterion) {
    let area = AreaModel::new(Tech::cmos_1p2um());
    let timing = TimingModel::new(Tech::cmos_1p2um());
    c.bench_function("area_model_full_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for geom in [Geometry::g32x128(), Geometry::g64x64()] {
                for ports in [Ports::three(), Ports::six()] {
                    total += area.nsf(black_box(geom), ports).total_um2();
                    total += area.segmented(black_box(geom), ports).total_um2();
                }
            }
            total
        });
    });
    c.bench_function("timing_model_full_sweep", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for geom in [Geometry::g32x128(), Geometry::g64x64()] {
                total += timing.nsf(black_box(geom)).total_ns();
                total += timing.segmented(black_box(geom)).total_ns();
            }
            total
        });
    });
}

fn bench_decoder(c: &mut Criterion) {
    c.bench_function("cam_bind_lookup_unbind_128", |b| {
        b.iter(|| {
            let mut d = AssocDecoder::new(128);
            for cid in 0..4u16 {
                for line in 0..32u8 {
                    let slot = d.take_free().expect("capacity");
                    d.bind(slot, cid, line);
                }
            }
            let mut hits = 0;
            for cid in 0..4u16 {
                for line in 0..32u8 {
                    hits += usize::from(d.lookup(black_box(cid), line).is_some());
                }
            }
            for slot in 0..128 {
                d.unbind(slot);
            }
            hits
        });
    });
}

criterion_group!(benches, bench_models, bench_decoder);
criterion_main!(benches);
