//! Criterion microbenchmarks of the register file organizations: hit and
//! miss paths, context switches, and the associative decoder.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nsf_core::{
    MapStore, NamedStateFile, NsfConfig, RegAddr, RegisterFile, SegmentedConfig, SegmentedFile,
};
use std::hint::black_box;

fn nsf() -> NamedStateFile {
    NamedStateFile::new(NsfConfig::paper_default(128))
}

fn seg() -> SegmentedFile {
    SegmentedFile::new(SegmentedConfig::paper_default(4, 32))
}

fn bench_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("hit_paths");
    g.bench_function("nsf_read_hit", |b| {
        let mut f = nsf();
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 5), 42, &mut s).unwrap();
        b.iter(|| f.read(black_box(RegAddr::new(1, 5)), &mut s).unwrap().value);
    });
    g.bench_function("nsf_write_hit", |b| {
        let mut f = nsf();
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 5), 42, &mut s).unwrap();
        b.iter(|| f.write(black_box(RegAddr::new(1, 5)), 43, &mut s).unwrap());
    });
    g.bench_function("segmented_read_hit", |b| {
        let mut f = seg();
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 5), 42, &mut s).unwrap();
        b.iter(|| f.read(black_box(RegAddr::new(1, 5)), &mut s).unwrap().value);
    });
    g.finish();
}

fn bench_miss_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("miss_paths");
    g.bench_function("nsf_thrash_two_working_sets", |b| {
        // 256 registers of demand across a 128-register file: every
        // access round-trips through eviction + demand reload.
        b.iter_batched(
            || (nsf(), MapStore::new()),
            |(mut f, mut s)| {
                for round in 0..4u32 {
                    for cid in 0..8u16 {
                        for off in 0..32u8 {
                            let a = RegAddr::new(cid, off);
                            if round == 0 {
                                f.write(a, u32::from(off), &mut s).unwrap();
                            } else {
                                let _ = f.read(a, &mut s);
                            }
                        }
                    }
                }
                f
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("segmented_thrash_eight_threads", |b| {
        b.iter_batched(
            || (seg(), MapStore::new()),
            |(mut f, mut s)| {
                for round in 0..4u32 {
                    for cid in 0..8u16 {
                        f.switch_to(cid, &mut s).unwrap();
                        for off in 0..32u8 {
                            let a = RegAddr::new(cid, off);
                            if round == 0 {
                                f.write(a, u32::from(off), &mut s).unwrap();
                            } else {
                                let _ = f.read(a, &mut s);
                            }
                        }
                    }
                }
                f
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_switch");
    g.bench_function("nsf_switch", |b| {
        let mut f = nsf();
        let mut s = MapStore::new();
        let mut cid = 0u16;
        b.iter(|| {
            cid = (cid + 1) % 16;
            f.switch_to(black_box(cid), &mut s).unwrap()
        });
    });
    g.bench_function("segmented_switch_resident", |b| {
        let mut f = seg();
        let mut s = MapStore::new();
        for cid in 0..4 {
            f.switch_to(cid, &mut s).unwrap();
        }
        let mut cid = 0u16;
        b.iter(|| {
            cid = (cid + 1) % 4;
            f.switch_to(black_box(cid), &mut s).unwrap()
        });
    });
    g.bench_function("segmented_switch_thrashing", |b| {
        let mut f = seg();
        let mut s = MapStore::new();
        for cid in 0..8 {
            f.switch_to(cid, &mut s).unwrap();
            for off in 0..32 {
                f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
            }
        }
        let mut cid = 0u16;
        b.iter(|| {
            cid = (cid + 1) % 8;
            f.switch_to(black_box(cid), &mut s).unwrap()
        });
    });
    g.finish();
}

fn bench_switch_storm(c: &mut Criterion) {
    // Context switches against a large file with many resident contexts:
    // with the per-context residency index, cost must not depend on how
    // many lines each context holds.
    let mut g = c.benchmark_group("switch_storm");
    g.bench_function("nsf_switch_64_resident_contexts", |b| {
        let mut f = NamedStateFile::new(NsfConfig::paper_default(2048));
        let mut s = MapStore::new();
        for cid in 0..64u16 {
            for off in 0..32u8 {
                f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
            }
        }
        let mut cid = 0u16;
        b.iter(|| {
            cid = (cid + 1) % 64;
            f.switch_to(black_box(cid), &mut s).unwrap()
        });
    });
    g.finish();
}

fn bench_eviction_storm(c: &mut Criterion) {
    // Steady-state eviction at 100% occupancy. Run the identical storm at
    // two file sizes: per-write cost should be flat across sizes now that
    // victim selection and writeback no longer scan the file.
    let mut g = c.benchmark_group("eviction_storm");
    for total in [128u32, 2048] {
        g.bench_function(format!("nsf_evict_every_write_{total}_regs"), |b| {
            let mut f = NamedStateFile::new(NsfConfig::paper_default(total));
            let mut s = MapStore::new();
            let contexts = (total / 32) as u16;
            for cid in 0..contexts {
                for off in 0..32u8 {
                    f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
                }
            }
            // Every write below targets a non-resident register of a
            // fresh context, so it allocates — and the file being full,
            // each allocation evicts exactly one line.
            let mut n = 0u32;
            b.iter(|| {
                let cid = contexts + (n / 32 % 1024) as u16;
                let off = (n % 32) as u8;
                n += 1;
                f.write(black_box(RegAddr::new(cid, off)), n, &mut s)
                    .unwrap()
            });
        });
    }
    g.finish();
}

fn bench_free_context(c: &mut Criterion) {
    // Tearing down a context that owns many lines: the residency index
    // hands over exactly the owned slots, instead of scanning every tag.
    let mut g = c.benchmark_group("free_context");
    g.bench_function("nsf_free_32_line_context", |b| {
        let mut f = NamedStateFile::new(NsfConfig::paper_default(2048));
        let mut s = MapStore::new();
        for cid in 1..64u16 {
            for off in 0..32u8 {
                f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
            }
        }
        b.iter_batched(
            || (),
            |()| {
                for off in 0..32u8 {
                    f.write(RegAddr::new(0, off), 1, &mut s).unwrap();
                }
                f.free_context(black_box(0), &mut s);
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_occupancy(c: &mut Criterion) {
    // The simulator samples occupancy every 16 instructions; with the
    // incremental counters this is a two-field read however large the
    // file is.
    let mut g = c.benchmark_group("occupancy");
    g.bench_function("nsf_occupancy_2048_regs", |b| {
        let mut f = NamedStateFile::new(NsfConfig::paper_default(2048));
        let mut s = MapStore::new();
        for cid in 0..64u16 {
            for off in 0..32u8 {
                f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
            }
        }
        b.iter(|| black_box(f.occupancy()));
    });
    g.bench_function("segmented_occupancy_64_frames", |b| {
        let mut f = SegmentedFile::new(SegmentedConfig::paper_default(64, 32));
        let mut s = MapStore::new();
        for cid in 0..64u16 {
            f.switch_to(cid, &mut s).unwrap();
            for off in 0..32u8 {
                f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
            }
        }
        b.iter(|| black_box(f.occupancy()));
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_hits,
    bench_miss_paths,
    bench_switch,
    bench_switch_storm,
    bench_eviction_storm,
    bench_free_context,
    bench_occupancy
);
criterion_main!(benches);
