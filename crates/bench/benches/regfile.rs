//! Criterion microbenchmarks of the register file organizations: hit and
//! miss paths, context switches, and the associative decoder.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use nsf_core::{
    MapStore, NamedStateFile, NsfConfig, RegAddr, RegisterFile, SegmentedConfig, SegmentedFile,
};
use std::hint::black_box;

fn nsf() -> NamedStateFile {
    NamedStateFile::new(NsfConfig::paper_default(128))
}

fn seg() -> SegmentedFile {
    SegmentedFile::new(SegmentedConfig::paper_default(4, 32))
}

fn bench_hits(c: &mut Criterion) {
    let mut g = c.benchmark_group("hit_paths");
    g.bench_function("nsf_read_hit", |b| {
        let mut f = nsf();
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 5), 42, &mut s).unwrap();
        b.iter(|| f.read(black_box(RegAddr::new(1, 5)), &mut s).unwrap().value);
    });
    g.bench_function("nsf_write_hit", |b| {
        let mut f = nsf();
        let mut s = MapStore::new();
        f.write(RegAddr::new(1, 5), 42, &mut s).unwrap();
        b.iter(|| f.write(black_box(RegAddr::new(1, 5)), 43, &mut s).unwrap());
    });
    g.bench_function("segmented_read_hit", |b| {
        let mut f = seg();
        let mut s = MapStore::new();
        f.switch_to(1, &mut s).unwrap();
        f.write(RegAddr::new(1, 5), 42, &mut s).unwrap();
        b.iter(|| f.read(black_box(RegAddr::new(1, 5)), &mut s).unwrap().value);
    });
    g.finish();
}

fn bench_miss_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("miss_paths");
    g.bench_function("nsf_thrash_two_working_sets", |b| {
        // 256 registers of demand across a 128-register file: every
        // access round-trips through eviction + demand reload.
        b.iter_batched(
            || (nsf(), MapStore::new()),
            |(mut f, mut s)| {
                for round in 0..4u32 {
                    for cid in 0..8u16 {
                        for off in 0..32u8 {
                            let a = RegAddr::new(cid, off);
                            if round == 0 {
                                f.write(a, u32::from(off), &mut s).unwrap();
                            } else {
                                let _ = f.read(a, &mut s);
                            }
                        }
                    }
                }
                f
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("segmented_thrash_eight_threads", |b| {
        b.iter_batched(
            || (seg(), MapStore::new()),
            |(mut f, mut s)| {
                for round in 0..4u32 {
                    for cid in 0..8u16 {
                        f.switch_to(cid, &mut s).unwrap();
                        for off in 0..32u8 {
                            let a = RegAddr::new(cid, off);
                            if round == 0 {
                                f.write(a, u32::from(off), &mut s).unwrap();
                            } else {
                                let _ = f.read(a, &mut s);
                            }
                        }
                    }
                }
                f
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_switch");
    g.bench_function("nsf_switch", |b| {
        let mut f = nsf();
        let mut s = MapStore::new();
        let mut cid = 0u16;
        b.iter(|| {
            cid = (cid + 1) % 16;
            f.switch_to(black_box(cid), &mut s).unwrap()
        });
    });
    g.bench_function("segmented_switch_resident", |b| {
        let mut f = seg();
        let mut s = MapStore::new();
        for cid in 0..4 {
            f.switch_to(cid, &mut s).unwrap();
        }
        let mut cid = 0u16;
        b.iter(|| {
            cid = (cid + 1) % 4;
            f.switch_to(black_box(cid), &mut s).unwrap()
        });
    });
    g.bench_function("segmented_switch_thrashing", |b| {
        let mut f = seg();
        let mut s = MapStore::new();
        for cid in 0..8 {
            f.switch_to(cid, &mut s).unwrap();
            for off in 0..32 {
                f.write(RegAddr::new(cid, off), 1, &mut s).unwrap();
            }
        }
        let mut cid = 0u16;
        b.iter(|| {
            cid = (cid + 1) % 8;
            f.switch_to(black_box(cid), &mut s).unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_hits, bench_miss_paths, bench_switch);
criterion_main!(benches);
