//! Criterion group `tag_index`: the CAM decoder's tag lookup, isolated.
//! `nsf_core::tagindex::TagIndex` replaced a `std::collections::HashMap`
//! in `AssocDecoder::lookup` — the hottest call in every sweep, run once
//! per simulated register access — because SipHash on the 3-byte tag
//! cost more than the rest of the hit path combined. The group times a
//! register-file-shaped churn loop (lookups dominating, with bind/unbind
//! traffic mixed in) over both indexes at a paper-sized capacity.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nsf_core::tagindex::TagIndex;
use std::collections::HashMap;

/// Lines in the simulated file: the paper's 128-register NSF with
/// single-register lines.
const LINES: u32 = 128;

/// Deterministic access pattern shaped like sweep traffic: a strided
/// walk over `<cid, line>` keys, eight lookups per insert/remove pair.
fn keys() -> Vec<u32> {
    (0..4096u32).map(|i| (i.wrapping_mul(37)) % LINES).collect()
}

fn bench_tag_index(c: &mut Criterion) {
    let mut g = c.benchmark_group("tag_index");
    let ks = keys();

    g.bench_function("tagindex_churn", |b| {
        b.iter(|| {
            let mut t = TagIndex::with_capacity(LINES as usize);
            let mut hits = 0u64;
            for (i, &k) in ks.iter().enumerate() {
                if i % 8 == 0 {
                    t.insert(k, i as u32);
                } else if i % 8 == 7 {
                    t.remove(k);
                } else if t.get(k).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.bench_function("hashmap_churn", |b| {
        b.iter(|| {
            let mut t: HashMap<u32, u32> = HashMap::with_capacity(LINES as usize);
            let mut hits = 0u64;
            for (i, &k) in ks.iter().enumerate() {
                if i % 8 == 0 {
                    t.insert(k, i as u32);
                } else if i % 8 == 7 {
                    t.remove(&k);
                } else if t.contains_key(&k) {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_tag_index);
criterion_main!(benches);
