//! Integration: simulation is fully deterministic — identical programs
//! and configurations produce identical measurements, run to run. Every
//! figure in the paper reproduction depends on this.

use nsf::sim::{RegFileSpec, SimConfig};
use nsf::workloads::{self, run};

#[test]
fn repeated_runs_are_bit_identical() {
    for w in workloads::paper_suite(0) {
        let cfg = SimConfig::with_regfile(RegFileSpec::paper_nsf(128));
        let a = run(&w, cfg).unwrap();
        let b = run(&w, cfg).unwrap();
        assert_eq!(a.instructions, b.instructions, "{}", w.name);
        assert_eq!(a.cycles, b.cycles, "{}", w.name);
        assert_eq!(a.context_switches, b.context_switches, "{}", w.name);
        assert_eq!(a.regfile, b.regfile, "{}", w.name);
        assert_eq!(a.dcache, b.dcache, "{}", w.name);
        assert_eq!(
            a.occupancy.sum_valid_regs, b.occupancy.sum_valid_regs,
            "{}",
            w.name
        );
    }
}

#[test]
fn rebuilt_workloads_are_identical() {
    // Workload generation itself is seeded: rebuilding produces the same
    // program and inputs.
    for (a, b) in workloads::paper_suite(0)
        .into_iter()
        .zip(workloads::paper_suite(0))
    {
        assert_eq!(a.program.insts(), b.program.insts(), "{}", a.name);
        assert_eq!(a.mem_init, b.mem_init, "{}", a.name);
    }
}

#[test]
fn scheduling_quantum_changes_timing_not_results() {
    // The interleaving quantum preempts threads but every workload still
    // validates (the harness checks outputs inside `run`).
    let mut cfg = SimConfig::with_regfile(RegFileSpec::paper_nsf(128));
    cfg.quantum = Some(16);
    for w in workloads::parallel_suite(0) {
        let preempted = run(&w, cfg).unwrap();
        let blocked = run(&w, SimConfig::with_regfile(RegFileSpec::paper_nsf(128))).unwrap();
        assert!(
            preempted.thread_switches >= blocked.thread_switches,
            "{}: quantum must not reduce switching",
            w.name
        );
    }
}

#[test]
fn random_replacement_is_seeded() {
    use nsf::core::{NsfConfig, ReplacementPolicy};
    let w = workloads::quicksort::build(0);
    let mut cfg = NsfConfig::paper_default(64);
    cfg.replacement = ReplacementPolicy::Random { seed: 123 };
    let c = SimConfig::with_regfile(RegFileSpec::Nsf(cfg));
    let a = run(&w, c).unwrap();
    let b = run(&w, c).unwrap();
    assert_eq!(a.regfile, b.regfile, "seeded random must be reproducible");
    assert_eq!(a.cycles, b.cycles);
}
