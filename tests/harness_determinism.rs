//! Thread-count and lane-count independence of the sweep harness.
//!
//! Every migrated experiment grid must produce field-for-field identical
//! reports — and byte-identical rendered tables — whether the sweep ran
//! on one worker thread or eight, and whether points executed serially
//! or lane-batched (`--lanes 4` / `--lanes 8`). The simulations
//! themselves are deterministic (see `tests/determinism.rs`); these
//! tests pin the two channels the harness could open: result ordering
//! and the lane-batched execution path.

use nsf_bench::figures;
use nsf_bench::Sweep;
use nsf_sim::RunReport;

type Render = fn(u32, &Sweep, &[RunReport], bool) -> String;

/// Runs one grid serially, with 8 workers, and lane-batched (4- and
/// 8-wide, serial and threaded pools), asserting every report stream
/// and every rendered table matches exactly.
fn assert_thread_independent(name: &str, grid: fn(u32) -> Sweep, render: Render) {
    let sweep = grid(0);
    let serial = sweep.run(1);
    let threaded = sweep.run(8);
    assert_eq!(
        serial, threaded,
        "{name}: reports differ across thread counts"
    );
    for (threads, lanes) in [(1, 4), (8, 8)] {
        let laned = sweep.run_lanes(threads, lanes);
        assert_eq!(
            serial, laned,
            "{name}: reports differ lane-batched ({threads} threads, {lanes} lanes)"
        );
    }
    for quiet in [false, true] {
        let a = render(0, &sweep, &serial, quiet);
        let b = render(0, &sweep, &threaded, quiet);
        assert_eq!(a, b, "{name}: rendered output differs across thread counts");
        assert!(!a.is_empty(), "{name}: empty render");
    }
}

macro_rules! determinism_test {
    ($($name:ident),+ $(,)?) => {$(
        #[test]
        fn $name() {
            assert_thread_independent(
                stringify!($name),
                figures::$name::grid,
                figures::$name::render,
            );
        }
    )+};
}

determinism_test!(
    table1,
    fig09,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    ablations,
    related_work,
    depth_sweep,
    summary,
);

/// `export_csv` renders to CSV files rather than a table; compare the
/// full set of (name, header, rows) across thread counts.
#[test]
fn export_csv() {
    let sweep = figures::export_csv::grid(0);
    let serial = sweep.run(1);
    let threaded = sweep.run(8);
    assert_eq!(
        serial, threaded,
        "export_csv: reports differ across thread counts"
    );
    assert_eq!(
        serial,
        sweep.run_lanes(1, 8),
        "export_csv: reports differ lane-batched"
    );
    let a = figures::export_csv::csvs(&sweep, &serial);
    let b = figures::export_csv::csvs(&sweep, &threaded);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.name, y.name);
        assert_eq!(x.header, y.header);
        assert_eq!(
            x.rows, y.rows,
            "{}: rows differ across thread counts",
            x.name
        );
    }
    assert_eq!(a.len(), 3, "expected the three documented CSV files");
}
