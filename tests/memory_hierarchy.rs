//! Integration: register spills travel through the data cache (paper
//! Figure 4) — register traffic and program data genuinely contend.

use nsf::mem::CacheConfig;
use nsf::sim::{RegFileSpec, SimConfig};
use nsf::workloads::{gamteb, quicksort, run};

fn with_cache(mut cfg: SimConfig, dcache: CacheConfig) -> SimConfig {
    cfg.mem.dcache = dcache;
    cfg
}

#[test]
fn spills_appear_in_dcache_statistics() {
    // A thrashing segmented file must generate far more cache accesses
    // than the same program on an oracle (whose register traffic is 0).
    let w = gamteb::build(0);
    let seg = run(
        &w,
        SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 32)),
    )
    .unwrap();
    let oracle = run(&w, SimConfig::with_regfile(RegFileSpec::Oracle)).unwrap();
    let extra = seg.dcache.accesses.saturating_sub(oracle.dcache.accesses);
    let moved = seg.regfile.regs_reloaded + seg.regfile.regs_spilled;
    assert!(
        extra >= moved / 2,
        "register traffic ({moved}) must show up in the cache ({extra} extra accesses)"
    );
}

#[test]
fn slower_cache_amplifies_spill_overhead() {
    let w = gamteb::build(0);
    let fast = CacheConfig {
        capacity_words: 16 * 1024,
        line_words: 4,
        ways: 4,
        hit_cycles: 1,
        miss_penalty: 10,
    };
    let slow = CacheConfig {
        miss_penalty: 200,
        ..fast
    };
    let base = SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 32));
    let r_fast = run(&w, with_cache(base, fast)).unwrap();
    let r_slow = run(&w, with_cache(base, slow)).unwrap();
    assert!(
        r_slow.regfile.spill_reload_cycles > r_fast.regfile.spill_reload_cycles,
        "spill cost must track memory latency: {} vs {}",
        r_slow.regfile.spill_reload_cycles,
        r_fast.regfile.spill_reload_cycles
    );
}

#[test]
fn tiny_cache_still_computes_correctly() {
    // A pathologically small cache changes timing only; every benchmark
    // output stays correct.
    let tiny = CacheConfig {
        capacity_words: 64,
        line_words: 4,
        ways: 1,
        hit_cycles: 1,
        miss_penalty: 50,
    };
    for w in [quicksort::build(0), gamteb::build(0)] {
        let cfg = with_cache(SimConfig::with_regfile(RegFileSpec::paper_nsf(128)), tiny);
        let r = run(&w, cfg).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert!(
            r.dcache.miss_ratio() > 0.05,
            "{}: tiny cache should thrash",
            w.name
        );
    }
}

#[test]
fn cache_pressure_does_not_change_results_or_instruction_mix() {
    // Sequential programs: identical instruction stream under any cache.
    let w = nsf::workloads::gatesim::build(0);
    let tiny = CacheConfig {
        capacity_words: 64,
        line_words: 4,
        ways: 1,
        hit_cycles: 1,
        miss_penalty: 50,
    };
    let big = CacheConfig::default();
    let base = SimConfig::with_regfile(RegFileSpec::paper_nsf(80));
    let a = run(&w, with_cache(base, tiny)).unwrap();
    let b = run(&w, with_cache(base, big)).unwrap();
    assert_eq!(a.instructions, b.instructions);
    assert!(a.cycles > b.cycles, "the tiny cache must cost cycles");
}
