//! Integration: the compiler pipeline end-to-end — IR programs compiled
//! with graph coloring and executed on the simulator must compute the
//! same values as their Rust counterparts, across register file
//! organizations and under forced spilling.

use nsf::compiler::{compile, BinOp, CompileOpts, Cond, FuncBuilder, Module, Operand};
use nsf::sim::{Machine, RegFileSpec, SimConfig};

const RESULT: u32 = 0x0020_0000;

/// Compiles and runs `module`, returning the word at the result address.
fn run_module(module: &Module, opts: CompileOpts, cfg: SimConfig) -> u32 {
    let program = compile(module, "main", opts).expect("compiles");
    let mut m = Machine::new(program, cfg).expect("machine");
    m.run_and_keep().expect("runs");
    m.mem.peek(RESULT)
}

fn store_result(f: &mut FuncBuilder, v: nsf::compiler::VReg) {
    f.store(v, RESULT as i32, 0);
}

fn fact_module() -> Module {
    // fn fact(n) = if n == 0 { 1 } else { n * fact(n-1) }
    let mut f = FuncBuilder::new("fact", 1);
    let n = f.param(0);
    let base = f.new_block();
    let rec = f.new_block();
    f.br(Cond::Eq, n, 0, base, rec);
    f.switch_to(base);
    f.ret(Some(Operand::Const(1)));
    f.switch_to(rec);
    let nm1 = f.bin(BinOp::Sub, n, 1);
    let sub = f.call("fact", vec![Operand::Reg(nm1)], true).unwrap();
    let r = f.bin(BinOp::Mul, n, sub);
    f.ret(Some(r.into()));
    let fact = f.finish();

    let mut m = FuncBuilder::new("main", 0);
    let v = m.call("fact", vec![Operand::Const(10)], true).unwrap();
    store_result(&mut m, v);
    m.ret(None);
    Module::default().with(m.finish()).with(fact)
}

#[test]
fn recursive_factorial() {
    let expected: u32 = (1..=10).product();
    for cfg in [
        SimConfig::with_regfile(RegFileSpec::paper_nsf(80)),
        SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 20)),
        SimConfig::with_regfile(RegFileSpec::Oracle),
    ] {
        assert_eq!(
            run_module(&fact_module(), CompileOpts::default(), cfg),
            expected
        );
    }
}

#[test]
fn iterative_gcd() {
    // fn gcd(a, b) { while b != 0 { (a, b) = (b, a % b) } return a }
    let mut f = FuncBuilder::new("gcd", 2);
    let a = f.param(0);
    let b = f.param(1);
    let hdr = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jmp(hdr);
    f.switch_to(hdr);
    f.br(Cond::Ne, b, 0, body, exit);
    f.switch_to(body);
    let r = f.bin(BinOp::Rem, a, b);
    f.copy_to(a, b);
    f.copy_to(b, r);
    f.jmp(hdr);
    f.switch_to(exit);
    f.ret(Some(a.into()));
    let gcd = f.finish();

    let mut m = FuncBuilder::new("main", 0);
    let v = m
        .call(
            "gcd",
            vec![Operand::Const(3528), Operand::Const(3780)],
            true,
        )
        .unwrap();
    store_result(&mut m, v);
    m.ret(None);
    let module = Module::default().with(m.finish()).with(gcd);
    assert_eq!(
        run_module(&module, CompileOpts::default(), SimConfig::default()),
        252
    );
}

#[test]
fn forced_spilling_preserves_semantics() {
    // 30 simultaneously live values under an 8-register context: the
    // allocator must spill, and the result must not change.
    let build = || {
        let mut f = FuncBuilder::new("main", 0);
        let vals: Vec<_> = (0..30).map(|i| f.bin(BinOp::Add, i, i + 1)).collect();
        let mut acc = f.copy(0);
        for v in &vals {
            acc = f.bin(BinOp::Add, acc, *v);
        }
        // Keep all `vals` live to the end by folding them again.
        for v in &vals {
            acc = f.bin(BinOp::Xor, acc, *v);
        }
        store_result(&mut f, acc);
        f.ret(None);
        Module::default().with(f.finish())
    };
    let expected: u32 = {
        let vals: Vec<u32> = (0..30u32).map(|i| i + (i + 1)).collect();
        let mut acc: u32 = vals.iter().sum();
        for v in vals {
            acc ^= v;
        }
        acc
    };
    let tight = CompileOpts {
        ctx_regs: 10,
        ..Default::default()
    };
    let roomy = CompileOpts::default();
    assert_eq!(run_module(&build(), tight, SimConfig::default()), expected);
    assert_eq!(run_module(&build(), roomy, SimConfig::default()), expected);
}

#[test]
fn deep_mutual_recursion() {
    // is_even / is_odd via mutual recursion: exercises long call chains
    // and cross-function label resolution.
    let mut e = FuncBuilder::new("is_even", 1);
    let n = e.param(0);
    let base = e.new_block();
    let rec = e.new_block();
    e.br(Cond::Eq, n, 0, base, rec);
    e.switch_to(base);
    e.ret(Some(Operand::Const(1)));
    e.switch_to(rec);
    let nm1 = e.bin(BinOp::Sub, n, 1);
    let v = e.call("is_odd", vec![Operand::Reg(nm1)], true).unwrap();
    e.ret(Some(v.into()));
    let is_even = e.finish();

    let mut o = FuncBuilder::new("is_odd", 1);
    let n = o.param(0);
    let base = o.new_block();
    let rec = o.new_block();
    o.br(Cond::Eq, n, 0, base, rec);
    o.switch_to(base);
    o.ret(Some(Operand::Const(0)));
    o.switch_to(rec);
    let nm1 = o.bin(BinOp::Sub, n, 1);
    let v = o.call("is_even", vec![Operand::Reg(nm1)], true).unwrap();
    o.ret(Some(v.into()));
    let is_odd = o.finish();

    let mut m = FuncBuilder::new("main", 0);
    let v = m.call("is_even", vec![Operand::Const(101)], true).unwrap();
    store_result(&mut m, v);
    m.ret(None);
    let module = Module::default()
        .with(m.finish())
        .with(is_even)
        .with(is_odd);

    // Depth-101 call chain on a tiny segmented file: heavy window
    // overflow/underflow, still correct.
    for cfg in [
        SimConfig::with_regfile(RegFileSpec::paper_nsf(40)),
        SimConfig::with_regfile(RegFileSpec::paper_segmented(2, 20)),
    ] {
        assert_eq!(run_module(&module, CompileOpts::default(), cfg), 0);
    }
}

#[test]
fn memory_heavy_loop() {
    // Write then sum an array through IR loads/stores.
    let base = 0x0011_0000u32;
    let n = 50;
    let mut f = FuncBuilder::new("main", 0);
    let i = f.copy(0);
    let hdr = f.new_block();
    let body = f.new_block();
    let exit = f.new_block();
    f.jmp(hdr);
    f.switch_to(hdr);
    f.br(Cond::Lt, i, n, body, exit);
    f.switch_to(body);
    let sq = f.bin(BinOp::Mul, i, i);
    let addr = f.bin(BinOp::Add, i, base as i32);
    f.store(sq, addr, 0);
    f.bin_to(i, BinOp::Add, i, 1);
    f.jmp(hdr);
    f.switch_to(exit);
    let acc = f.copy(0);
    let j = f.copy(0);
    let hdr2 = f.new_block();
    let body2 = f.new_block();
    let exit2 = f.new_block();
    f.jmp(hdr2);
    f.switch_to(hdr2);
    f.br(Cond::Lt, j, n, body2, exit2);
    f.switch_to(body2);
    let addr = f.bin(BinOp::Add, j, base as i32);
    let v = f.load(addr, 0);
    f.bin_to(acc, BinOp::Add, acc, v);
    f.bin_to(j, BinOp::Add, j, 1);
    f.jmp(hdr2);
    f.switch_to(exit2);
    store_result(&mut f, acc);
    f.ret(None);
    let module = Module::default().with(f.finish());

    let expected: u32 = (0..50u32).map(|i| i * i).sum();
    assert_eq!(
        run_module(&module, CompileOpts::default(), SimConfig::default()),
        expected
    );
}
