//! Integration: every benchmark must produce identical, correct output on
//! every register file organization — the organizations differ only in
//! *cost*, never in semantics — and the cost metrics must order the way
//! the paper's evaluation says they do.

use nsf::core::SpillEngine;
use nsf::sim::{RegFileSpec, SimConfig};
use nsf::workloads::{self, run, Workload};

fn configs_for(w: &Workload) -> Vec<(&'static str, SimConfig)> {
    let (nsf_regs, frames, frame_regs) = if w.parallel {
        (128, 4, 32)
    } else {
        (80, 4, 20)
    };
    vec![
        (
            "nsf",
            SimConfig::with_regfile(RegFileSpec::paper_nsf(nsf_regs)),
        ),
        (
            "segmented",
            SimConfig::with_regfile(RegFileSpec::paper_segmented(frames, frame_regs)),
        ),
        (
            "segmented-valid",
            SimConfig::with_regfile(RegFileSpec::segmented_valid_only(frames, frame_regs)),
        ),
        (
            "conventional",
            SimConfig::with_regfile(RegFileSpec::Conventional {
                regs: frame_regs,
                engine: SpillEngine::hardware(),
            }),
        ),
        (
            "windowed",
            SimConfig::with_regfile(RegFileSpec::sparc_windows(frame_regs)),
        ),
        ("oracle", SimConfig::with_regfile(RegFileSpec::Oracle)),
    ]
}

#[test]
fn every_benchmark_validates_on_every_organization() {
    for w in workloads::paper_suite(0) {
        for (tag, cfg) in configs_for(&w) {
            let r = run(&w, cfg).unwrap_or_else(|e| panic!("{} on {tag}: {e}", w.name));
            assert!(r.instructions > 0, "{} on {tag} executed nothing", w.name);
        }
    }
}

#[test]
fn nsf_never_reloads_more_than_the_segmented_file() {
    for w in workloads::paper_suite(0) {
        let (nsf_regs, frames, frame_regs) = if w.parallel {
            (128, 4, 32)
        } else {
            (80, 4, 20)
        };
        let nsf = run(
            &w,
            SimConfig::with_regfile(RegFileSpec::paper_nsf(nsf_regs)),
        )
        .unwrap();
        let seg = run(
            &w,
            SimConfig::with_regfile(RegFileSpec::paper_segmented(frames, frame_regs)),
        )
        .unwrap();
        assert!(
            nsf.reloads_per_instr() <= seg.reloads_per_instr() + 1e-9,
            "{}: NSF {} vs segmented {}",
            w.name,
            nsf.reloads_per_instr(),
            seg.reloads_per_instr()
        );
    }
}

#[test]
fn nsf_utilization_at_least_matches_segmented() {
    for w in workloads::paper_suite(0) {
        let (nsf_regs, frames, frame_regs) = if w.parallel {
            (128, 4, 32)
        } else {
            (80, 4, 20)
        };
        let nsf = run(
            &w,
            SimConfig::with_regfile(RegFileSpec::paper_nsf(nsf_regs)),
        )
        .unwrap();
        let seg = run(
            &w,
            SimConfig::with_regfile(RegFileSpec::paper_segmented(frames, frame_regs)),
        )
        .unwrap();
        assert!(
            nsf.utilization() >= seg.utilization() - 1e-9,
            "{}: NSF {} vs segmented {}",
            w.name,
            nsf.utilization(),
            seg.utilization()
        );
    }
}

#[test]
fn software_traps_cost_more_than_hardware_assist() {
    for w in workloads::parallel_suite(0) {
        let hw = run(
            &w,
            SimConfig::with_regfile(RegFileSpec::paper_segmented(4, 32)),
        )
        .unwrap();
        let mut seg_cfg = nsf::core::SegmentedConfig::paper_default(4, 32);
        seg_cfg.engine = SpillEngine::software();
        let sw = run(&w, SimConfig::with_regfile(RegFileSpec::Segmented(seg_cfg))).unwrap();
        assert!(
            sw.regfile.spill_reload_cycles >= hw.regfile.spill_reload_cycles,
            "{}: sw {} < hw {}",
            w.name,
            sw.regfile.spill_reload_cycles,
            hw.regfile.spill_reload_cycles
        );
    }
}

#[test]
fn sequential_instruction_counts_are_organization_independent() {
    // The register file changes cycle counts, never the instruction path
    // of a single-threaded program.
    for w in workloads::sequential_suite(0) {
        let counts: Vec<u64> = configs_for(&w)
            .into_iter()
            .map(|(_, cfg)| run(&w, cfg).unwrap().instructions)
            .collect();
        assert!(
            counts.windows(2).all(|c| c[0] == c[1]),
            "{}: divergent instruction counts {counts:?}",
            w.name
        );
    }
}

#[test]
fn oracle_never_misses() {
    for w in workloads::paper_suite(0) {
        let r = run(&w, SimConfig::with_regfile(RegFileSpec::Oracle)).unwrap();
        assert_eq!(r.regfile.read_misses, 0, "{}", w.name);
        assert_eq!(r.regfile.regs_reloaded, 0, "{}", w.name);
        assert_eq!(r.regfile.spill_reload_cycles, 0, "{}", w.name);
    }
}
