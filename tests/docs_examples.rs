//! Documentation honesty: code blocks shipped in the docs actually run
//! and produce the values the prose implies.

use nsf::isa::asm::assemble;
use nsf::sim::{Machine, SimConfig};

#[test]
fn isa_reference_example_computes_double_of_three() {
    let doc = include_str!("../docs/ISA.md");
    let start = doc.find("```asm").expect("asm block present") + 7;
    let end = doc[start..].find("```").expect("closed block") + start;
    let program = assemble(&doc[start..end]).expect("ISA.md example assembles");
    let mut m = Machine::new(program, SimConfig::default()).unwrap();
    m.run_and_keep().expect("example runs");
    assert_eq!(m.mem.peek(4096), 6, "double(3) per the calling convention");
}

#[test]
fn readme_figure_block_matches_current_fig14() {
    // The README quotes Figure 14's serial row; recompute it at scale 0
    // only loosely (scale-1 values live in EXPERIMENTS.md), asserting the
    // qualitative relation the quoted numbers express.
    use nsf::sim::RegFileSpec;
    let seq = nsf::workloads::sequential_suite(0);
    let mut nsf_cycles = 0;
    let mut nsf_spill = 0;
    let mut hw_spill = 0;
    let mut hw_cycles = 0;
    for w in &seq {
        let n =
            nsf::workloads::run(w, SimConfig::with_regfile(RegFileSpec::paper_nsf(120))).unwrap();
        let h = nsf::workloads::run(
            w,
            SimConfig::with_regfile(RegFileSpec::paper_segmented(6, 20)),
        )
        .unwrap();
        nsf_spill += n.regfile.spill_reload_cycles;
        nsf_cycles += n.cycles;
        hw_spill += h.regfile.spill_reload_cycles;
        hw_cycles += h.cycles;
    }
    let nsf_frac = nsf_spill as f64 / nsf_cycles as f64;
    let hw_frac = hw_spill as f64 / hw_cycles as f64;
    assert!(
        nsf_frac < 0.005,
        "README claims ~0% serial NSF overhead, got {nsf_frac}"
    );
    assert!(
        hw_frac > 0.01,
        "README claims multi-percent segmented overhead, got {hw_frac}"
    );
}
