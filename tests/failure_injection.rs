//! Integration: faults surface as typed errors, never as panics or
//! silent corruption.

use nsf::core::{
    FaultyStore, MapStore, NamedStateFile, NsfConfig, RegAddr, RegFileError, RegisterFile,
    SegmentedConfig, SegmentedFile, StoreFault,
};
use nsf::sim::{Machine, SimConfig, SimError};

#[test]
fn nsf_surfaces_spill_faults() {
    let mut f = NamedStateFile::new(NsfConfig::paper_default(4));
    let mut s = FaultyStore::new(MapStore::new(), 0); // every op faults
    for i in 0..4 {
        f.write(RegAddr::new(1, i), 1, &mut s).unwrap(); // allocations: no traffic
    }
    // Fifth write must spill — and the fault must come back typed.
    let err = f.write(RegAddr::new(2, 0), 2, &mut s).unwrap_err();
    assert!(matches!(err, RegFileError::Store(StoreFault::Io(_))));
}

#[test]
fn nsf_surfaces_reload_faults() {
    let mut f = NamedStateFile::new(NsfConfig::paper_default(4));
    let mut s = FaultyStore::new(MapStore::new(), 1); // one op succeeds
    for i in 0..4 {
        f.write(RegAddr::new(1, i), u32::from(i), &mut s).unwrap();
    }
    f.write(RegAddr::new(2, 0), 9, &mut s).unwrap(); // spill consumes the budget
    let err = f.read(RegAddr::new(1, 0), &mut s).unwrap_err();
    assert!(matches!(err, RegFileError::Store(StoreFault::Io(_))));
}

#[test]
fn segmented_surfaces_switch_faults() {
    let mut f = SegmentedFile::new(SegmentedConfig::paper_default(1, 4));
    let mut s = FaultyStore::new(MapStore::new(), 0);
    f.switch_to(1, &mut s).unwrap(); // fresh claim: no traffic
    f.write(RegAddr::new(1, 0), 1, &mut s).unwrap();
    let err = f.switch_to(2, &mut s).unwrap_err();
    assert!(matches!(err, RegFileError::Store(StoreFault::Io(_))));
}

#[test]
fn machine_rejects_inconsistent_configuration() {
    let p = nsf::isa::asm::assemble("main: halt").unwrap();
    let mut cfg = SimConfig::default();
    cfg.mem.ctable_slots = 4; // far fewer than cid_capacity
    let err = Machine::new(p, cfg).unwrap_err();
    assert!(matches!(err, SimError::BadConfig(_)));
    assert!(err.to_string().contains("ctable_slots"));
}

#[test]
fn machine_reports_read_of_undefined_register_with_pc() {
    let p = nsf::isa::asm::assemble("main: nop\n add r0, r1, r2\n halt").unwrap();
    let err = Machine::new(p, SimConfig::default())
        .unwrap()
        .run()
        .unwrap_err();
    match err {
        SimError::RegFile {
            pc,
            source: RegFileError::ReadUndefined(_),
        } => {
            assert_eq!(pc, 1, "error must point at the faulting instruction");
        }
        other => panic!("wrong error: {other}"),
    }
}

#[test]
fn cid_exhaustion_is_detected() {
    // Unbounded recursion exhausts Context IDs; the simulator reports it
    // rather than looping or panicking.
    let p = nsf::isa::asm::assemble("main: call main\n halt").unwrap();
    let mut cfg = SimConfig::default();
    cfg.sched.cid_capacity = 64;
    cfg.mem.ctable_slots = 64;
    let err = Machine::new(p, cfg).unwrap().run().unwrap_err();
    assert!(matches!(
        err,
        SimError::Sched(nsf::runtime::SchedulerError::CidExhausted)
    ));
}

#[test]
fn thread_exhaustion_is_detected() {
    let p = nsf::isa::asm::assemble(
        "main: li r0, 0
         loop: spawn child, r0
               jmp loop
         child: halt",
    )
    .unwrap();
    let mut cfg = SimConfig::default();
    cfg.sched.max_threads = 16;
    let err = Machine::new(p, cfg).unwrap().run().unwrap_err();
    assert!(matches!(
        err,
        SimError::Sched(nsf::runtime::SchedulerError::TooManyThreads)
    ));
}
