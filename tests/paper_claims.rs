//! Integration: the paper's headline quantitative claims, asserted as
//! envelope tests over the reproduced system (shape, not absolute
//! numbers — see EXPERIMENTS.md).

use nsf::core::{NsfConfig, ReloadPolicy};
use nsf::sim::{RegFileSpec, SimConfig};
use nsf::vlsi::{AreaModel, Geometry, Ports, Tech, TimingModel};
use nsf::workloads::{self, run};

fn nsf_cfg(regs: u32) -> SimConfig {
    SimConfig::with_regfile(RegFileSpec::paper_nsf(regs))
}

fn seg_cfg(frames: u32, frame_regs: u8) -> SimConfig {
    SimConfig::with_regfile(RegFileSpec::paper_segmented(frames, frame_regs))
}

/// "Context switching is very fast with the NSF, since no registers must
/// be saved or restored" — switch stall cycles are identically zero.
#[test]
fn claim_nsf_context_switches_are_free() {
    for w in workloads::parallel_suite(0) {
        let r = run(&w, nsf_cfg(128)).unwrap();
        // All spill/reload cycles come from demand misses, never from
        // switch_to; verify indirectly: a gigantic NSF has zero overhead.
        let big = run(&w, nsf_cfg(4096)).unwrap();
        assert_eq!(
            big.regfile.spill_reload_cycles, 0,
            "{}: an NSF bigger than the working set must never spill",
            w.name
        );
        assert!(r.context_switches > 0);
    }
}

/// "The NSF can hold the entire call chain of a large sequential
/// application, spilling registers at 1e-4 the rate of a conventional
/// file."
#[test]
fn claim_sequential_call_chains_fit() {
    let w = workloads::gatesim::build(0);
    let nsf = run(&w, nsf_cfg(80)).unwrap();
    let seg = run(&w, seg_cfg(4, 20)).unwrap();
    assert!(
        nsf.regfile.regs_reloaded * 50 <= seg.regfile.regs_reloaded.max(1),
        "NSF {} vs segmented {} reloads",
        nsf.regfile.regs_reloaded,
        seg.regfile.regs_reloaded
    );
}

/// Figure 14 ordering: NSF < segmented-HW < segmented-SW overhead, on
/// the parallel aggregate.
#[test]
fn claim_overhead_ordering() {
    let mut totals = [0u64; 3];
    let mut cycles = [0u64; 3];
    for w in workloads::parallel_suite(0) {
        let nsf = run(&w, nsf_cfg(128)).unwrap();
        let hw = run(&w, seg_cfg(4, 32)).unwrap();
        let mut sw_cfg = nsf::core::SegmentedConfig::paper_default(4, 32);
        sw_cfg.engine = nsf::core::SpillEngine::software();
        let sw = run(&w, SimConfig::with_regfile(RegFileSpec::Segmented(sw_cfg))).unwrap();
        totals[0] += nsf.regfile.spill_reload_cycles;
        totals[1] += hw.regfile.spill_reload_cycles;
        totals[2] += sw.regfile.spill_reload_cycles;
        cycles[0] += nsf.cycles;
        cycles[1] += hw.cycles;
        cycles[2] += sw.cycles;
    }
    let frac: Vec<f64> = totals
        .iter()
        .zip(&cycles)
        .map(|(&t, &c)| t as f64 / c as f64)
        .collect();
    assert!(
        frac[0] < frac[1] && frac[1] < frac[2],
        "overhead ordering violated: {frac:?}"
    );
}

/// Figure 13 shape: single-register lines minimise traffic; whole-line
/// reload grows with line width and dominates valid-only, which
/// dominates demand reload.
#[test]
fn claim_line_size_shape() {
    let w = workloads::quicksort::build(0);
    let traffic = |width: u8, reload: ReloadPolicy| {
        let mut cfg = NsfConfig::paper_default(128);
        cfg.regs_per_line = width;
        cfg.reload = reload;
        run(&w, SimConfig::with_regfile(RegFileSpec::Nsf(cfg)))
            .unwrap()
            .regfile
            .regs_reloaded
    };
    let whole_1 = traffic(1, ReloadPolicy::WholeLine);
    let whole_4 = traffic(4, ReloadPolicy::WholeLine);
    let whole_16 = traffic(16, ReloadPolicy::WholeLine);
    assert!(
        whole_1 <= whole_4 && whole_4 <= whole_16,
        "A-curve must grow"
    );
    for width in [4u8, 16] {
        let a = traffic(width, ReloadPolicy::WholeLine);
        let b = traffic(width, ReloadPolicy::ValidOnly);
        let c = traffic(width, ReloadPolicy::SingleRegister);
        assert!(
            a >= b && b >= c,
            "A >= B >= C violated at width {width}: {a} {b} {c}"
        );
    }
}

/// Figure 11: the NSF holds at least as many resident contexts as a
/// same-size segmented file, and more than twice as many on sequential
/// call chains.
#[test]
fn claim_resident_contexts() {
    let w = workloads::gatesim::build(0);
    for frames in [2u32, 4] {
        let nsf = run(&w, nsf_cfg(frames * 20)).unwrap();
        let seg = run(&w, seg_cfg(frames, 20)).unwrap();
        assert!(
            nsf.occupancy.avg_contexts() >= 1.5 * seg.occupancy.avg_contexts(),
            "frames={frames}: NSF {} vs segmented {}",
            nsf.occupancy.avg_contexts(),
            seg.occupancy.avg_contexts()
        );
    }
}

/// "The NSF's access time is only 5% greater than conventional register
/// file designs" and "requires 16% to 50% more chip area".
#[test]
fn claim_vlsi_costs() {
    let timing = TimingModel::new(Tech::cmos_1p2um());
    let area = AreaModel::new(Tech::cmos_1p2um());
    for geom in [Geometry::g32x128(), Geometry::g64x64()] {
        let t = timing.nsf_overhead(geom);
        assert!((0.0..=0.10).contains(&t), "{geom:?} timing overhead {t}");
    }
    for (geom, ports) in [
        (Geometry::g32x128(), Ports::three()),
        (Geometry::g64x64(), Ports::three()),
        (Geometry::g32x128(), Ports::six()),
        (Geometry::g64x64(), Ports::six()),
    ] {
        let a = area.nsf_overhead(geom, ports);
        assert!(
            (0.05..=0.65).contains(&a),
            "{geom:?}/{ports:?} area overhead {a}"
        );
    }
}

/// Paper §4.2: explicit per-register deallocation. Hints must not change
/// results and must not increase a small NSF's spill traffic.
#[test]
fn claim_free_hints_reduce_small_file_traffic() {
    let plain = workloads::gatesim::build_with_hints(0, false);
    let hinted = workloads::gatesim::build_with_hints(0, true);
    let cfg = nsf_cfg(40);
    let p = run(&plain, cfg).unwrap();
    let h = run(&hinted, cfg).unwrap();
    // Both validated their checksums inside `run`; compare traffic.
    assert!(
        h.regfile.regs_spilled <= p.regfile.regs_spilled,
        "hints must not increase spills: {} vs {}",
        h.regfile.regs_spilled,
        p.regfile.regs_spilled
    );
    assert!(h.regfile.regs_reloaded <= p.regfile.regs_reloaded);
}

/// The paper's Table 1 grain ordering: Gamteb is the finest-grain
/// parallel benchmark, AS and Wavefront the coarsest.
#[test]
fn claim_grain_ordering() {
    let grain = |w: &workloads::Workload| run(w, nsf_cfg(128)).unwrap().instrs_per_switch();
    let gamteb = grain(&workloads::gamteb::build(0));
    let as_g = grain(&workloads::as_bench::build(0));
    let wave = grain(&workloads::wavefront::build(0));
    assert!(gamteb * 4.0 < as_g, "gamteb {gamteb} vs AS {as_g}");
    assert!(gamteb * 4.0 < wave, "gamteb {gamteb} vs wavefront {wave}");
}
