//! # nsf — the Named-State Register File, reproduced
//!
//! Umbrella crate for the reproduction of *"The Named-State Register File:
//! Implementation and Performance"* (Nuth & Dally, HPCA 1995). It re-exports
//! every subsystem so examples, integration tests and downstream users can
//! depend on a single crate:
//!
//! * [`isa`] — the target instruction set, assembler and program builder;
//! * [`mem`] — main memory, the data cache and the Ctable;
//! * [`core`] — the register file organizations under study: the
//!   Named-State Register File, the segmented baseline, and a conventional
//!   indexed file;
//! * [`vlsi`] — area and access-time models of the register files;
//! * [`compiler`] — a small optimizing compiler (liveness + graph coloring)
//!   targeting the ISA;
//! * [`runtime`] — threads, channels and synchronisation for the
//!   block-multithreaded processor model;
//! * [`sim`] — the architectural simulator and its metrics;
//! * [`workloads`] — the paper's nine benchmarks plus synthetic generators.
//!
//! See `README.md` for a tour and `DESIGN.md` for the experiment index.

pub use nsf_compiler as compiler;
pub use nsf_core as core;
pub use nsf_isa as isa;
pub use nsf_mem as mem;
pub use nsf_runtime as runtime;
pub use nsf_sim as sim;
pub use nsf_vlsi as vlsi;
pub use nsf_workloads as workloads;
